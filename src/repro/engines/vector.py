"""The numpy data-parallel CDG parser.

This engine is the repository's stand-in for SIMD execution (see
DESIGN.md): every constraint is evaluated over *all* role values — or all
O(n^2) x O(n^2) pairs — in one broadcast numpy expression, mirroring the
ACU broadcasting one instruction to every PE.  Consistency maintenance is
the segmented OR-along-rows / AND-across-arcs sweep from
:mod:`repro.propagation.consistency` — the same dataflow the MasPar
performs with ``scanOr``/``scanAnd`` (Figures 10 and 12).

By default the engine runs on the **packed execution core**: arc
matrices, alive vector and the cached binary masks are uint64 bit
arrays (:mod:`repro.network.bitset`), so binary propagation is one
word-wide AND with a popcount delta and the consistency sweep touches
1/8th of the memory of the byte representation — the software analogue
of the MP-1 pushing single-bit flags through 4-bit PEs.
``VectorEngine(packed=False)`` (registered as ``"vector-bool"``) keeps
the byte-per-bool path alive for memory/throughput comparison;
``benchmarks/bench_memory.py`` measures the two against each other.

The constraint evaluations themselves are pure functions of the
network's *template* (field arrays + category table), so the engine
pulls them from :meth:`NetworkTemplate.vector_masks`: the first parse
of a sentence shape evaluates and caches, every later parse of that
shape replays the cached masks.  Through a
:class:`~repro.pipeline.session.ParserSession` this is where batch
throughput comes from; on the one-shot path the template is fresh each
call and the cost is identical to direct evaluation.

Results are bit-identical to :class:`repro.engines.serial.SerialEngine`
on either core; only the wall-clock differs (by orders of magnitude,
which is Table RES-T3's point).
"""

from __future__ import annotations

import numpy as np

from repro.engines.base import EngineStats, ParserEngine, TraceHook
from repro.network.network import ConstraintNetwork
from repro.pipeline.compiled import CompiledGrammar, compile_grammar
from repro.propagation.consistency import consistency_step_vector
from repro.propagation.filtering import filter_network


class VectorEngine(ParserEngine):
    """Vectorized (numpy broadcast) implementation.

    Args:
        packed: run on the packed bit matrices (default).  ``False``
            materializes the boolean view and replays the identical
            dataflow byte-per-bool — the comparison baseline the
            memory benchmark needs; results are bit-identical.
        fused: on the packed path, apply the precomputed word-wide AND
            of all binary masks (``VectorMasks.fused``) in one shot and
            run a single consistency fixpoint, instead of interleaving
            per-constraint mask applications with full sweeps.  Sound
            because Maruyama's eliminations are monotone: both
            schedules converge to the same (unique) greatest fixpoint,
            so final networks are bit-identical; only the sweep-order
            stats (``consistency_passes``, ``filtering_iterations``,
            and the kill/zero attribution between them) differ.  The
            fused path only engages when no per-constraint observation
            is requested (``trace is None`` and ``filter_limit is
            None``); otherwise the engine falls back to the interleaved
            schedule.  ``False`` (registered as ``"vector-interleaved"``)
            forces the per-constraint schedule unconditionally.
    """

    name = "vector"

    def __init__(self, packed: bool = True, fused: bool = True):
        self.packed = packed
        self.fused = fused
        if not packed:
            self.name = "vector-bool"
        elif not fused:
            self.name = "vector-interleaved"

    def run(
        self,
        network: ConstraintNetwork,
        *,
        compiled: CompiledGrammar | None = None,
        filter_limit: int | None = None,
        trace: TraceHook | None = None,
    ) -> EngineStats:
        compiled = compiled or compile_grammar(network.grammar)
        if self.packed:
            masks = network.template.vector_masks(compiled)
            return self._run(
                network,
                masks=masks,
                compiled=compiled,
                filter_limit=filter_limit,
                trace=trace,
            )
        # Byte-per-bool comparison path: bracket the boolean working
        # representation so the network comes back packed even on error.
        network.materialize_bool()
        try:
            masks = network.template.vector_masks_bool(compiled)
            return self._run(
                network,
                masks=masks,
                compiled=compiled,
                filter_limit=filter_limit,
                trace=trace,
            )
        finally:
            network.repack()

    def _run(
        self,
        network: ConstraintNetwork,
        *,
        masks,
        compiled: CompiledGrammar,
        filter_limit: int | None,
        trace: TraceHook | None,
    ) -> EngineStats:
        stats = EngineStats()

        # -- unary propagation: one cached permitted vector per constraint
        for constraint, permitted in zip(compiled.unary, masks.unary, strict=True):
            dead = np.nonzero(network.alive & ~permitted)[0]
            stats.unary_checks += network.alive_count()
            network.kill(dead)
            stats.role_values_killed += len(dead)
            if trace:
                trace(f"unary:{constraint.name}", network)
        if trace:
            trace("unary-done", network)

        # -- binary propagation ------------------------------------------
        fused_mask = (
            masks.fused
            if (self.packed and self.fused and trace is None and filter_limit is None)
            else None
        )
        if fused_mask is not None:
            # Fused fast path: every pair still gets checked against
            # every binary constraint — the checks were just folded into
            # one precomputed mask at template-build time — so
            # ``pair_checks`` accounts for all k_b constraints.  The
            # final ``filter_network`` fixpoint below replaces the
            # per-constraint interleaved sweeps.
            stats.pair_checks += network.nv * network.nv * len(compiled.binary)
            stats.matrix_entries_zeroed += network.apply_pair_mask_bits(fused_mask)
            stats.extra["fused_binary_kernel"] = True
            return self._finish(network, stats, filter_limit=filter_limit, trace=trace)

        # Interleaved schedule: one cached mask per constraint, each
        # followed by a full consistency sweep (the traceable path).
        for constraint, both in zip(compiled.binary, masks.binary, strict=True):
            stats.pair_checks += network.nv * network.nv
            if self.packed:
                stats.matrix_entries_zeroed += network.apply_pair_mask_bits(both)
            else:
                stats.matrix_entries_zeroed += network.apply_pair_mask(
                    both, presymmetrized=True
                )
            if trace:
                trace(f"binary:{constraint.name}", network)

            killed = consistency_step_vector(network)
            stats.role_values_killed += killed
            stats.consistency_passes += 1
            if trace:
                trace(f"consistency:{constraint.name}", network)

        return self._finish(network, stats, filter_limit=filter_limit, trace=trace)

    def _finish(
        self,
        network: ConstraintNetwork,
        stats: EngineStats,
        *,
        filter_limit: int | None,
        trace: TraceHook | None,
    ) -> EngineStats:
        # -- filtering ----------------------------------------------------

        def counting_step(net: ConstraintNetwork) -> int:
            killed = consistency_step_vector(net)
            stats.role_values_killed += killed
            stats.consistency_passes += 1
            return killed

        stats.filtering_iterations = filter_network(network, counting_step, limit=filter_limit)
        if trace:
            trace("filtering-done", network)
        # Record the working representation's footprint here, before the
        # byte path's finally-repack folds back to packed words — the
        # memory benchmark compares these numbers across the two cores.
        stats.extra["network_bytes"] = network.state_nbytes()
        return stats
