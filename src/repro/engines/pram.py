"""CDG parsing on the CRCW P-RAM (paper section 2.1).

This engine runs the *actual* per-processor programs on the simulated
machine — every role value (or pair of role values) really is handled
by its own processor in each synchronous step — so the recorded step
count and peak processor count directly validate the paper's claims:

* all role values generated in O(1) steps with O(n^2) processors;
* each constraint propagated in O(1) steps with O(n^4) processors;
* consistency maintenance in O(1) steps via the concurrent-write OR/AND
  idiom (many processors write the same cell);
* hence O(k) total steps (plus filtering iterations, which the paper
  bounds by a constant in practice).

It is the slowest engine by far (it is a PRAM being emulated one
processor at a time); use it on short sentences.  Results are
bit-identical to the other engines.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.scalar import EvalEnv
from repro.engines.base import EngineStats, ParserEngine, TraceHook
from repro.network.network import ConstraintNetwork
from repro.pipeline.compiled import CompiledGrammar, compile_grammar
from repro.pram.machine import CRCWPram


class PRAMEngine(ParserEngine):
    """CRCW P-RAM implementation with genuine per-processor execution."""

    name = "pram"

    def __init__(self, policy: str = "common"):
        # The algorithm only ever uses the concurrent-write idiom with
        # equal values, so COMMON and ARBITRARY behave identically; COMMON
        # additionally *checks* that, catching algorithm bugs.
        self.policy = policy

    def run(
        self,
        network: ConstraintNetwork,
        *,
        compiled: CompiledGrammar | None = None,
        filter_limit: int | None = None,
        trace: TraceHook | None = None,
    ) -> EngineStats:
        compiled = compiled or compile_grammar(network.grammar)
        # The host read-backs write the boolean arrays in place; repack
        # on every exit so callers always get a packed network back.
        network.materialize_bool()
        try:
            stats = EngineStats()
            nv = network.nv
            n_roles = network.n_roles
            pram = CRCWPram(policy=self.policy)
            role_values = network.role_values
            role_index = network.role_index
            canbe = network.canbe_sets

            pram.alloc("alive", (nv,), dtype=np.int8)
            pram.alloc("M", (nv, nv), dtype=np.int8)
            pram.alloc("support", (nv, n_roles), dtype=np.int8)
            pram.alloc("changed", (1,), dtype=np.int8)

            # -- generation: every role value / matrix entry in parallel -----
            pram.step(nv, lambda ctx: ctx.write("alive", ctx.pid, 1))

            init_matrix = network.matrix  # includes category coherence
            def generate_matrix(ctx):
                a, b = divmod(ctx.pid, nv)
                ctx.write("M", a, b, 1 if init_matrix[a, b] else 0)

            pram.step(nv * nv, generate_matrix)

            def sync(event: str) -> None:
                network.alive[:] = pram.host_read("alive").astype(bool)
                network.matrix[:] = pram.host_read("M").astype(bool)
                if trace:
                    trace(event, network)

            # -- unary constraints: one step each, O(n^2) processors ----------
            for constraint in compiled.unary:
                permits = constraint.scalar

                def unary_program(ctx, permits=permits):
                    if ctx.read("alive", ctx.pid):
                        env = EvalEnv(x=role_values[ctx.pid], y=None, canbe=canbe)
                        stats.unary_checks += 1
                        if not permits(env):
                            ctx.write("alive", ctx.pid, 0)

                pram.step(nv, unary_program)
                self._zero_dead_rows(pram, nv)
                sync(f"unary:{constraint.name}")
            sync("unary-done")

            # -- binary constraints: one step each, O(n^4) processors ----------
            for constraint in compiled.binary:
                permits = constraint.scalar

                def binary_program(ctx, permits=permits):
                    a, b = divmod(ctx.pid, nv)
                    if a == b or role_index[a] == role_index[b]:
                        return
                    if not ctx.read("M", a, b):
                        return
                    env = EvalEnv(x=role_values[a], y=role_values[b], canbe=canbe)
                    stats.pair_checks += 1
                    if not permits(env):
                        ctx.write("M", a, b, 0)
                        ctx.write("M", b, a, 0)

                pram.step(nv * nv, binary_program)
                sync(f"binary:{constraint.name}")
                killed = self._consistency(pram, network, stats)
                stats.role_values_killed += killed
                stats.consistency_passes += 1
                sync(f"consistency:{constraint.name}")

            # -- filtering ------------------------------------------------------
            iterations = 0
            while filter_limit is None or iterations < filter_limit:
                killed = self._consistency(pram, network, stats)
                stats.consistency_passes += 1
                if killed == 0:
                    break
                stats.role_values_killed += killed
                iterations += 1
            stats.filtering_iterations = iterations

            network.alive[:] = pram.host_read("alive").astype(bool)
            network.matrix[:] = pram.host_read("M").astype(bool)
            if trace:
                trace("filtering-done", network)

            stats.parallel_steps = pram.stats.steps
            stats.processors = pram.stats.peak_processors
            stats.extra["total_work"] = pram.stats.total_work
            stats.extra["network_bytes"] = network.state_nbytes()
            return stats
        finally:
            network.repack()

    # -- building blocks -----------------------------------------------------

    @staticmethod
    def _zero_dead_rows(pram: CRCWPram, nv: int) -> None:
        """One O(n^4)-processor step: M[a,b] = 0 if either endpoint died."""

        def program(ctx):
            a, b = divmod(ctx.pid, nv)
            if ctx.read("M", a, b) and not (ctx.read("alive", a) and ctx.read("alive", b)):
                ctx.write("M", a, b, 0)

        pram.step(nv * nv, program)

    def _consistency(self, pram: CRCWPram, network: ConstraintNetwork, stats: EngineStats) -> int:
        """Constant-step consistency maintenance (paper section 2.1).

        Four steps regardless of n: clear supports; concurrent-write OR
        into support[a, role(b)]; kill unsupported (concurrent-write 0 to
        alive); zero dead rows/columns.
        """
        nv = network.nv
        n_roles = network.n_roles
        role_index = network.role_index

        def clear(ctx):
            a, j = divmod(ctx.pid, n_roles)
            ctx.write("support", a, j, 0)

        pram.step(nv * n_roles, clear)

        def gather_support(ctx):
            a, b = divmod(ctx.pid, nv)
            if ctx.read("M", a, b) and ctx.read("alive", b):
                # Concurrent-write OR: every supporter writes the same 1.
                ctx.write("support", a, int(role_index[b]), 1)

        pram.step(nv * nv, gather_support)

        before = int(pram.host_read("alive").sum())

        def kill_unsupported(ctx):
            a, j = divmod(ctx.pid, n_roles)
            if j == role_index[a]:
                return
            if ctx.read("alive", a) and not ctx.read("support", a, j):
                ctx.write("alive", a, 0)
                ctx.write("changed", 0, 1)

        pram.step(nv * n_roles, kill_unsupported)
        self._zero_dead_rows(pram, nv)
        return before - int(pram.host_read("alive").sum())
