"""Common interface implemented by all four parser engines.

The engines (serial, vector, PRAM, MasPar/PARSEC) share one contract:
given a grammar and a sentence they run the CDG algorithm —

    unary propagation -> binary propagation -> consistency maintenance
    -> filtering

— and return a :class:`ParseResult` wrapping the settled constraint
network plus instrumentation.  All engines must settle on the *same*
network (the greatest locally-consistent subnetwork); the cross-engine
equivalence tests rely on this.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.grammar.grammar import CDGGrammar, Sentence
from repro.network.network import ConstraintNetwork

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.pipeline.compiled import CompiledGrammar

#: Test/debug hook: called with (event, network) after each phase.  Events:
#: "built", "unary:<name>", "unary-done", "binary:<name>",
#: "consistency:<name>", "filtering-done".
TraceHook = Callable[[str, ConstraintNetwork], None]


@dataclass
class EngineStats:
    """Operation counts and timings recorded while parsing.

    ``parallel_steps`` / ``processors`` are only meaningful for the
    simulated parallel engines; ``simulated_seconds`` only for the MasPar
    engine (its cycle-accurate cost model).
    """

    engine: str = ""
    unary_checks: int = 0
    pair_checks: int = 0
    role_values_killed: int = 0
    matrix_entries_zeroed: int = 0
    consistency_passes: int = 0
    filtering_iterations: int = 0
    parallel_steps: int = 0
    processors: int = 0
    wall_seconds: float = 0.0
    simulated_seconds: float | None = None
    extra: dict = field(default_factory=dict)


@dataclass
class ParseResult:
    """Outcome of running an engine over one sentence.

    Attributes:
        network: the settled constraint network.
        locally_consistent: every role kept at least one role value — the
            paper's acceptance condition at the CN level.  (Definitive
            acceptance additionally needs a consistent assignment; use
            :func:`repro.search.extract_parses`.)
        ambiguous: some role still holds multiple role values.
        stats: instrumentation counters.
    """

    network: ConstraintNetwork
    locally_consistent: bool
    ambiguous: bool
    stats: EngineStats

    @property
    def rejected(self) -> bool:
        return not self.locally_consistent


class ParserEngine(abc.ABC):
    """Abstract parser engine."""

    #: Short identifier used in stats and benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def run(
        self,
        network: ConstraintNetwork,
        *,
        compiled: "CompiledGrammar | None" = None,
        filter_limit: int | None = None,
        trace: TraceHook | None = None,
    ) -> EngineStats:
        """Propagate all constraints over *network* in place.

        Args:
            compiled: the grammar's compiled artifacts; resolved from
                ``network.grammar`` (cached per grammar object) when
                omitted.
        """

    def parse(
        self,
        grammar: CDGGrammar,
        sentence: Sentence | str | list[str],
        *,
        filter_limit: int | None = None,
        trace: TraceHook | None = None,
    ) -> ParseResult:
        """Build the CN for *sentence* and run this engine over it.

        .. deprecated:: 1.1
            Thin wrapper over the session path, kept so existing
            callers and benchmarks run unmodified.  It builds a
            throwaway :class:`~repro.pipeline.session.ParserSession`
            per call, so nothing amortizes; batch callers should hold a
            session and use ``parse`` / ``parse_many`` on it.
        """
        warnings.warn(
            "ParserEngine.parse is deprecated since 1.1: it builds a throwaway "
            "ParserSession per call, so nothing amortizes; hold a "
            "repro.ParserSession and use its parse/parse_many instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.pipeline.session import ParserSession

        session = ParserSession(grammar, engine=self, template_cache_size=1)
        return session.parse(sentence, filter_limit=filter_limit, trace=trace)
