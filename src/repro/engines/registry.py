"""The engine registry: name -> factory, the execute layer's dispatch.

The CLI, the session API and the benchmarks all resolve engines through
one table, so adding an engine is one :func:`register_engine` call.
Factories (not instances) are registered because some engines carry
per-run configuration (``SerialEngine(exhaustive=True)``).
"""

from __future__ import annotations

from typing import Callable

from repro.engines.base import ParserEngine
from repro.errors import ReproError

EngineFactory = Callable[[], ParserEngine]

_REGISTRY: dict[str, EngineFactory] = {}


def register_engine(name: str, factory: EngineFactory) -> None:
    """Register *factory* under *name* (later registrations win)."""
    _REGISTRY[name] = factory


def available_engines() -> tuple[str, ...]:
    """Registered engine names, sorted."""
    _ensure_builtin()
    return tuple(sorted(_REGISTRY))


def create_engine(engine: "str | ParserEngine") -> ParserEngine:
    """Resolve *engine*: an instance passes through, a name is built."""
    if isinstance(engine, ParserEngine):
        return engine
    _ensure_builtin()
    try:
        factory = _REGISTRY[engine]
    except KeyError:
        raise ReproError(
            f"unknown engine {engine!r}; available: {', '.join(available_engines())}"
        ) from None
    return factory()


def _ensure_builtin() -> None:
    """Populate the registry with the built-in engines, lazily.

    The machine-simulated engines live in packages layered *above*
    ``repro.engines``, so they are imported on first resolution rather
    than at module import.
    """
    if "maspar" in _REGISTRY:
        return
    from repro.engines.pram import PRAMEngine
    from repro.engines.serial import SerialEngine
    from repro.engines.vector import VectorEngine
    from repro.mesh.engine import MeshEngine
    from repro.parsec.parser import MasParEngine

    _REGISTRY.setdefault("serial", SerialEngine)
    _REGISTRY.setdefault("serial-exhaustive", lambda: SerialEngine(exhaustive=True))
    _REGISTRY.setdefault("vector", VectorEngine)
    _REGISTRY.setdefault("vector-bool", lambda: VectorEngine(packed=False))
    _REGISTRY.setdefault("vector-interleaved", lambda: VectorEngine(fused=False))
    _REGISTRY.setdefault("pram", PRAMEngine)
    _REGISTRY.setdefault("maspar", MasParEngine)
    _REGISTRY.setdefault("mesh", MeshEngine)
