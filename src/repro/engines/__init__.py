"""Parser engines: serial, vector, PRAM-simulated and MasPar-simulated.

All engines settle every network to the same greatest locally-consistent
state; they differ in *how* (loops vs broadcasts vs simulated machines)
and in what they instrument (operation counts, parallel steps, simulated
cycles).
"""

from repro.engines.base import EngineStats, ParserEngine, ParseResult, TraceHook
from repro.engines.pram import PRAMEngine
from repro.engines.serial import SerialEngine
from repro.engines.vector import VectorEngine

__all__ = [
    "EngineStats",
    "ParserEngine",
    "ParseResult",
    "TraceHook",
    "SerialEngine",
    "VectorEngine",
    "PRAMEngine",
]


def all_engines() -> list[ParserEngine]:
    """One instance of every engine, including the machine-simulated ones.

    Imported lazily because those engines live above packages that
    themselves build on the engines package.
    """
    from repro.mesh.engine import MeshEngine
    from repro.parsec.parser import MasParEngine

    return [SerialEngine(), VectorEngine(), PRAMEngine(), MasParEngine(), MeshEngine()]
