"""Parser engines: serial, vector, PRAM-simulated and MasPar-simulated.

All engines settle every network to the same greatest locally-consistent
state; they differ in *how* (loops vs broadcasts vs simulated machines)
and in what they instrument (operation counts, parallel steps, simulated
cycles).
"""

from repro.engines.base import EngineStats, ParserEngine, ParseResult, TraceHook
from repro.engines.pram import PRAMEngine
from repro.engines.registry import available_engines, create_engine, register_engine
from repro.engines.serial import SerialEngine
from repro.engines.vector import VectorEngine

__all__ = [
    "EngineStats",
    "ParserEngine",
    "ParseResult",
    "TraceHook",
    "SerialEngine",
    "VectorEngine",
    "PRAMEngine",
    "available_engines",
    "create_engine",
    "register_engine",
    "all_engines",
]


def all_engines() -> list[ParserEngine]:
    """One instance of every distinct engine, via the registry.

    (``serial-exhaustive`` is skipped: it settles networks identically
    to ``serial`` and only differs in the work it counts.)
    """
    return [
        create_engine(name) for name in available_engines() if name != "serial-exhaustive"
    ]
