"""Command-line interface: ``python -m repro <command> ...``.

Commands:

``parse``
    Parse a sentence with a built-in (or file-loaded) grammar on any
    engine; print the settled network, parses, and engine statistics.
``grammars``
    List the built-in grammars.
``timing``
    Print the simulated-MasPar parse-time step function (RES-T2).
``figures``
    Re-derive the paper's worked example (Figures 1-7) on the terminal.
``serve-bench``
    Drive a :class:`~repro.serve.ParseService` under synthetic load and
    print its throughput plus a full metrics snapshot; ``--streaming``
    drives word-at-a-time service streams instead of whole sentences.
``stream``
    Parse word-at-a-time from the arguments or stdin, printing the
    running verdict and domain sizes after every token.
``cluster``
    The networked sharded parse cluster: ``cluster shard`` runs one
    shard server (the launcher's entry point), ``cluster up`` spawns a
    local fleet, and ``cluster bench`` runs the bit-identity-gated
    load benchmark and writes ``BENCH_cluster.json``.
``bench-bmm``
    Run the identity-gated kernel benchmark (BMM microbench + both
    parsers on the shared kernel core) and write ``BENCH_bmm.json``.
``calibrate``
    Race the available kernel backends over representative operand
    sizes and persist the winning dispatch table, so the first real
    parse under ``backend="auto"`` starts pre-tuned.

``--engine`` values are validated against the live registry (not a
frozen argparse choice list), so engines registered at runtime work and
an unknown name reports the registered ones; ``--kernel-backend``
values resolve through :mod:`repro.kernels.backend` the same way.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Sequence

from repro import ParserSession, __version__, extract_parses
from repro.analysis import format_seconds, format_table
from repro.engines.registry import available_engines
from repro.errors import ReproError
from repro.kernels import available_backends
from repro.grammar import CDGGrammar, load_grammar_file
from repro.grammar.builtin import (
    abcd_grammar,
    anbn_grammar,
    copy_language_grammar,
    dyck_grammar,
    english_extended_grammar,
    english_grammar,
    free_order_grammar,
    program_grammar,
)

BUILTIN_GRAMMARS: dict[str, Callable[[], CDGGrammar]] = {
    "program": program_grammar,
    "english": english_grammar,
    "english-extended": english_extended_grammar,
    "anbn": anbn_grammar,
    "copy": copy_language_grammar,
    "dyck": dyck_grammar,
    "abcd": abcd_grammar,
    "free-order": free_order_grammar,
}

def _resolve_grammar(name: str) -> CDGGrammar:
    if name in BUILTIN_GRAMMARS:
        return BUILTIN_GRAMMARS[name]()
    if name.endswith(".cdg"):
        return load_grammar_file(name)
    raise ReproError(
        f"unknown grammar {name!r}; use one of {sorted(BUILTIN_GRAMMARS)} or a .cdg file"
    )


def _cmd_parse(args: argparse.Namespace, out) -> int:
    grammar = _resolve_grammar(args.grammar)
    session = ParserSession(
        grammar,
        engine=args.engine,
        backend=args.kernel_backend,
        filter_limit=args.filter_limit,
    )
    words = list(args.words)
    if len(words) == 1 and " " in words[0]:
        words = words[0].split()
    result = session.parse(words)

    if args.network:
        print(result.network.describe(), file=out)
        print(file=out)
    print(f"locally consistent: {result.locally_consistent}", file=out)
    print(f"ambiguous: {result.ambiguous}", file=out)

    parses = extract_parses(result.network, limit=args.max_parses)
    print(f"parses ({len(parses)}{'+' if len(parses) == args.max_parses else ''}):", file=out)
    for index, parse in enumerate(parses, 1):
        print(f"--- parse {index} ---", file=out)
        if args.conll:
            from repro.search import to_conll

            print(to_conll(parse, grammar.symbols), file=out)
        else:
            print(parse.describe(grammar.symbols), file=out)

    if args.profile:
        from repro.analysis import profile_parse

        profile = profile_parse(grammar, words, engine=session)
        print(file=out)
        print(
            format_table(
                ["constraint", "kind", "direct", "via consistency", "total"],
                profile.as_rows(),
                title=f"Eliminations per constraint "
                f"({profile.initial_role_values} role values -> {profile.surviving_role_values})",
            ),
            file=out,
        )
        idle = profile.idle_constraints()
        if idle:
            print(f"idle constraints on this sentence: {', '.join(idle)}", file=out)

    if args.stats:
        stats = result.stats
        rows = [
            ["engine", stats.engine],
            ["wall time", format_seconds(stats.wall_seconds)],
            ["unary checks", stats.unary_checks],
            ["pair checks", stats.pair_checks],
            ["role values killed", stats.role_values_killed],
            ["consistency passes", stats.consistency_passes],
            ["filtering iterations", stats.filtering_iterations],
        ]
        if stats.processors:
            rows.append(["processors", stats.processors])
        if stats.parallel_steps:
            rows.append(["parallel steps", stats.parallel_steps])
        if stats.simulated_seconds is not None:
            rows.append(["simulated MP-1 time", format_seconds(stats.simulated_seconds)])
        if "network_bytes" in stats.extra:
            rows.append(["bytes/network", stats.extra["network_bytes"]])
        if "template_cache_bytes" in stats.extra:
            rows.append(["template cache bytes", stats.extra["template_cache_bytes"]])
        print(file=out)
        print(format_table(["stat", "value"], rows), file=out)
    return 0 if (parses or not args.strict) else 1


def _cmd_grammars(args: argparse.Namespace, out) -> int:
    rows = []
    for name, factory in sorted(BUILTIN_GRAMMARS.items()):
        grammar = factory()
        rows.append(
            [
                name,
                grammar.n_labels,
                grammar.n_roles,
                len(grammar.unary_constraints),
                len(grammar.binary_constraints),
                len(grammar.lexicon),
            ]
        )
    print(
        format_table(
            ["grammar", "labels", "roles", "unary", "binary", "lexicon"],
            rows,
            title="Built-in CDG grammars",
        ),
        file=out,
    )
    return 0


def _cmd_timing(args: argparse.Namespace, out) -> int:
    from repro.parsec import step_function_seconds, virtualization_units
    from repro.workloads import toy_sentence

    session = ParserSession(program_grammar(), engine="maspar")
    rows = []
    for n in range(2, args.max_n + 1):
        result = session.parse(toy_sentence(n))
        rows.append(
            [
                n,
                result.stats.processors,
                virtualization_units(n),
                format_seconds(result.stats.simulated_seconds),
                format_seconds(step_function_seconds(n)),
            ]
        )
    print(
        format_table(
            ["n", "virtual PEs", "units", "simulated", "paper model"],
            rows,
            title="Simulated MasPar parse time (paper section 3)",
        ),
        file=out,
    )
    return 0


def _cmd_figures(args: argparse.Namespace, out) -> int:
    states: list[tuple[str, str]] = []
    grammar = program_grammar()
    session = ParserSession(grammar, engine="serial")
    result = session.parse(
        "The program runs",
        trace=lambda event, net: states.append((event, net.describe())),
    )
    labels = {
        "built": "Figure 1: the initial constraint network",
        "unary:verbs-are-ungoverned-roots": "Figure 2: after the first unary constraint",
        "unary-done": "Figure 3: after unary propagation",
        "consistency:subj-governed-by-root-to-right": "Figure 5: after the first binary constraint + consistency",
        "filtering-done": "Figure 6: the final network",
    }
    for event, text in states:
        if event in labels:
            print(f"== {labels[event]} ==", file=out)
            print(text, file=out)
            print(file=out)
    print("== Figure 7: the precedence graph ==", file=out)
    for parse in extract_parses(result.network):
        print(parse.describe(grammar.symbols), file=out)
    return 0


def _cmd_stream(args: argparse.Namespace, out) -> int:
    grammar = _resolve_grammar(args.grammar)
    session = ParserSession(grammar, engine=args.engine)
    stream = session.stream()

    def tokens():
        if args.words:
            words = list(args.words)
            if len(words) == 1 and " " in words[0]:
                words = words[0].split()
            yield from words
        else:
            for line in sys.stdin:
                yield from line.split()

    for word in tokens():
        result = stream.extend(word)
        network = result.network
        verdict = "consistent" if result.locally_consistent else "REJECTED"
        flavor = " (ambiguous)" if result.ambiguous else ""
        print(
            f"[{stream.n_words:>3}] {word:<16} {verdict}{flavor}  "
            f"alive {network.alive_count()}/{network.nv} role values, "
            f"domains {'/'.join(str(s) for s in network.domain_sizes())}",
            file=out,
        )
    if stream.n_words == 0:
        print("no tokens received", file=out)
        return 1
    builds = session.template_builds()
    print(
        f"{stream.n_words} words: {builds['full']} full + "
        f"{builds['extended']} prefix-extended template build(s)",
        file=out,
    )
    return 0 if stream.result().locally_consistent else 1


def _serve_bench_streaming(args: argparse.Namespace, service, out) -> int:
    from repro.workloads import sentence_of_length

    words = sentence_of_length(10)
    with service:
        start = time.perf_counter()
        streams = [service.submit_stream() for _ in range(args.shapes)]
        futures = []
        # Round-robin feeding interleaves every stream's tokens through
        # one admission queue — the owner-affinity scheduling case.
        for word in words:
            futures.extend(stream.feed(word) for stream in streams)
        results = [future.result() for future in futures]
        for stream in streams:
            stream.close()
        service.drain()
        elapsed = time.perf_counter() - start
        snapshot = service.snapshot()

    final = results[-len(streams):]
    print(
        f"{len(streams)} stream(s) x {len(words)} tokens on {args.workers} "
        f"{args.workers_mode} worker(s): "
        f"{elapsed:.3f}s = {len(results) / elapsed:.1f} tokens/s "
        f"({sum(1 for r in final if r.locally_consistent)} of {len(streams)} "
        f"final prefixes locally consistent)",
        file=out,
    )
    print(file=out)
    print(service.metrics.render(snapshot), file=out)
    return 0


def _cmd_serve_bench(args: argparse.Namespace, out) -> int:
    from repro.serve import ParseService
    from repro.workloads import sentence_of_length

    grammar = _resolve_grammar(args.grammar)
    # A shape-interleaved arrival stream: the adversarial case for the
    # template cache, and exactly what shape-batching reorders.
    sentences = [
        sentence_of_length(3 + (i % args.shapes)) for i in range(args.requests)
    ]
    service = ParseService(
        grammar,
        engine=args.engine,
        kernel_backend=args.kernel_backend,
        workers=args.workers,
        workers_mode=args.workers_mode,
        start_method=args.start_method,
        max_queue=max(args.requests, 1),
        max_batch_size=args.batch_size,
        max_linger=args.linger_ms / 1000.0,
        admission="block",
    )
    if args.streaming:
        return _serve_bench_streaming(args, service, out)
    with service:
        start = time.perf_counter()
        futures = [service.submit(words) for words in sentences]
        results = [future.result() for future in futures]
        service.drain()
        elapsed = time.perf_counter() - start
        # Snapshot before shutdown: the shared store (process mode)
        # unlinks its blocks on close, zeroing shared_store_bytes.
        snapshot = service.snapshot()

    accepted = sum(1 for r in results if r.locally_consistent)
    print(
        f"{len(results)} requests ({args.shapes} shapes) on {args.workers} "
        f"{args.workers_mode} worker(s): "
        f"{elapsed:.3f}s = {len(results) / elapsed:.1f} req/s "
        f"({accepted} locally consistent)",
        file=out,
    )
    print(file=out)
    print(service.metrics.render(snapshot), file=out)
    cache = snapshot["service"]["template_cache"]
    print(
        f"template cache over {snapshot['service']['workers']} worker(s): "
        f"{cache['hits']} hits / {cache['misses']} misses",
        file=out,
    )
    memory = snapshot["service"]["memory"]
    print(
        f"memory: {snapshot['gauges']['network_bytes']} bytes/network, "
        f"template caches {memory['template_cache_bytes']} bytes "
        f"({memory['shapes_profiled']} shape(s) profiled)",
        file=out,
    )
    if memory.get("shared_store_bytes"):
        print(
            f"shared template store: {memory['shared_store_bytes']} bytes "
            f"exported once, mapped by every worker process",
            file=out,
        )
    return 0


def _cmd_cluster_shard(args: argparse.Namespace, out) -> int:
    from repro.cluster import ParseServer

    grammar = _resolve_grammar(args.grammar)
    server = ParseServer(
        grammar,
        engine=args.engine,
        host=args.host,
        port=args.port,
        shard_id=args.shard_id,
        workers=args.workers,
        workers_mode=args.workers_mode,
        kernel_backend=args.kernel_backend,
        max_batch_size=args.max_batch_size,
        max_linger=args.max_linger,
        log_path=args.log,
        port_file=args.port_file,
    )
    # Blocks until SIGTERM/SIGINT, then drains and shuts the service down.
    server.serve_forever()
    return 0


def _cmd_cluster_up(args: argparse.Namespace, out) -> int:
    from repro.cluster import ClusterLauncher

    launcher = ClusterLauncher(
        args.grammar,
        shards=args.shards,
        engine=args.engine,
        workers=args.workers,
        workers_mode=args.workers_mode,
        kernel_backend=args.kernel_backend,
        run_dir=args.run_dir,
    )
    with launcher:
        print(f"cluster up: {args.shards} shard(s), logs in {launcher.log_dir}", file=out)
        for index, address in enumerate(launcher.addresses):
            print(f"  shard {index}: {address}", file=out)
        print("Ctrl-C to drain and shut down.", file=out)
        try:
            while all(launcher.alive()):
                time.sleep(0.5)
            down = [i for i, ok in enumerate(launcher.alive()) if not ok]
            print(f"shard(s) {down} exited; shutting the cluster down", file=out)
            return 1
        except KeyboardInterrupt:
            print("shutting down...", file=out)
    return 0


def _cmd_cluster_bench(args: argparse.Namespace, out) -> int:
    from repro.cluster.bench import print_report, run_bench

    record = run_bench(
        grammar=args.grammar,
        engine=args.engine,
        shards=args.shards,
        workers=args.workers,
        workers_mode=args.workers_mode,
        quick=args.quick,
        concurrency=args.concurrency,
        out_path=args.out,
    )
    print_report(record, out)
    print(f"record written to {args.out}", file=out)
    return 0 if record["bit_identity"]["ok"] else 1


def _cmd_bench_bmm(args: argparse.Namespace, out) -> int:
    from repro.kernels.bench import print_report, run_bench

    record = run_bench(quick=args.quick, out_path=args.out)
    print_report(record, out)
    print(f"record written to {args.out}", file=out)
    return 0 if record["bit_identity"]["ok"] else 1


def _cmd_calibrate(args: argparse.Namespace, out) -> int:
    from repro.kernels.autotune import AutoBackend, cache_path

    if args.force:
        cache_path().unlink(missing_ok=True)
    auto = AutoBackend()
    known = auto.dispatch_snapshot() or {}
    if known:
        print(f"loaded {len(known)} persisted decision(s) from {cache_path()}", file=out)
    table = auto.warm(quick=args.quick)
    print(f"ran {auto.calibrations} calibration race(s)", file=out)
    print("dispatch table (kernel:size-bucket -> backend):", file=out)
    for key, winner in table.items():
        print(f"  {key:>20} -> {winner}", file=out)
    print(f"persisted to {cache_path()}", file=out)
    return 0


def _cmd_explain(args: argparse.Namespace, out) -> int:
    from repro.debugging import TraceRecorder

    grammar = _resolve_grammar(args.grammar)
    words = list(args.words)
    if len(words) == 1 and " " in words[0]:
        words = words[0].split()
    recorder = TraceRecorder()
    result = ParserSession(grammar, engine=args.engine).parse(words, trace=recorder)
    print(recorder.explain(skip_quiet=not args.all_phases), file=out)
    print(file=out)
    print(f"locally consistent: {result.locally_consistent}", file=out)
    print(f"ambiguous: {result.ambiguous}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PARSEC: parallel CDG parsing (Helzerman & Harper, ICPP 1992)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Engine names are validated at dispatch time by the registry (so
    # runtime-registered engines work); the help text lists built-ins.
    engine_help = f"engine name; registered: {', '.join(available_engines())}"
    backend_help = (
        "kernel backend name (resolved through repro.kernels.backend, so "
        f"runtime registrations work); registered: {', '.join(available_backends())}"
    )

    p_parse = sub.add_parser("parse", help="parse a sentence")
    p_parse.add_argument("words", nargs="+", help="the sentence (words or one quoted string)")
    p_parse.add_argument("--grammar", "-g", default="english")
    p_parse.add_argument("--engine", "-e", default="vector", help=engine_help)
    p_parse.add_argument("--kernel-backend", default=None, help=backend_help)
    p_parse.add_argument("--max-parses", type=int, default=5)
    p_parse.add_argument("--filter-limit", type=int, default=None)
    p_parse.add_argument("--network", action="store_true", help="print the settled CN")
    p_parse.add_argument("--stats", action="store_true", help="print engine statistics")
    p_parse.add_argument(
        "--profile", action="store_true", help="print per-constraint elimination counts"
    )
    p_parse.add_argument(
        "--conll", action="store_true", help="print parses in CoNLL-style columns"
    )
    p_parse.add_argument(
        "--strict", action="store_true", help="exit 1 when the sentence has no parse"
    )
    p_parse.set_defaults(func=_cmd_parse)

    p_grammars = sub.add_parser("grammars", help="list built-in grammars")
    p_grammars.set_defaults(func=_cmd_grammars)

    p_timing = sub.add_parser("timing", help="simulated MasPar timing sweep")
    p_timing.add_argument("--max-n", type=int, default=12)
    p_timing.set_defaults(func=_cmd_timing)

    p_figures = sub.add_parser("figures", help="replay the paper's worked example")
    p_figures.set_defaults(func=_cmd_figures)

    p_serve = sub.add_parser(
        "serve-bench",
        help="run a ParseService under synthetic load and print its metrics",
    )
    p_serve.add_argument("--grammar", "-g", default="english",
                         help="grammar whose lexicon covers the workload generator "
                              "(english / english-extended)")
    p_serve.add_argument("--engine", "-e", default="vector", help=engine_help)
    p_serve.add_argument("--kernel-backend", default=None, help=backend_help)
    p_serve.add_argument("--workers", "-w", type=int, default=2)
    p_serve.add_argument("--workers-mode", choices=("thread", "process"),
                         default="thread",
                         help="thread workers (GIL-shared) or process workers "
                              "over the shared-memory template store")
    p_serve.add_argument("--start-method", choices=("fork", "spawn", "forkserver"),
                         default=None,
                         help="multiprocessing start method for --workers-mode=process "
                              "(default: fork where available)")
    p_serve.add_argument("--requests", "-n", type=int, default=64)
    p_serve.add_argument("--shapes", type=int, default=4,
                         help="distinct sentence shapes interleaved in the load")
    p_serve.add_argument("--batch-size", type=int, default=16,
                         help="dynamic batcher flush size")
    p_serve.add_argument("--streaming", action="store_true",
                         help="drive word-at-a-time streams (one per --shapes) "
                              "instead of whole-sentence requests")
    p_serve.add_argument("--linger-ms", type=float, default=2.0,
                         help="dynamic batcher max linger (milliseconds)")
    p_serve.set_defaults(func=_cmd_serve_bench)

    p_stream = sub.add_parser(
        "stream",
        help="parse word-at-a-time (incremental streaming core)",
        description="Feed words one at a time — as arguments, or from stdin "
        "when none are given — and print the running verdict and domain "
        "sizes after each token.  Templates are grown by prefix extension, "
        "so the whole stream costs one cumulative template build.",
    )
    p_stream.add_argument("words", nargs="*",
                          help="tokens (or one quoted sentence); default: read stdin")
    p_stream.add_argument("--grammar", "-g", default="english")
    p_stream.add_argument("--engine", "-e", default="vector", help=engine_help)
    p_stream.set_defaults(func=_cmd_stream)

    p_cluster = sub.add_parser(
        "cluster",
        help="networked sharded parse cluster (shard / up / bench)",
        description="Run the repro.cluster subsystem: a consistent-hash "
        "router fanning parse and stream requests across shard servers, "
        "each fronting its own ParseService on a localhost socket.",
    )
    cluster_sub = p_cluster.add_subparsers(dest="cluster_command", required=True)

    p_shard = cluster_sub.add_parser(
        "shard", help="run one shard server (used by the launcher)"
    )
    p_shard.add_argument("--grammar", "-g", default="english")
    p_shard.add_argument("--engine", "-e", default="vector", help=engine_help)
    p_shard.add_argument("--host", default="127.0.0.1")
    p_shard.add_argument("--port", type=int, default=0,
                         help="TCP port; 0 asks the OS (announced via --port-file)")
    p_shard.add_argument("--shard-id", type=int, default=0)
    p_shard.add_argument("--workers", "-w", type=int, default=1)
    p_shard.add_argument("--workers-mode", choices=("thread", "process"), default="thread")
    p_shard.add_argument("--kernel-backend", default=None, help=backend_help)
    p_shard.add_argument("--max-batch-size", type=int, default=16)
    p_shard.add_argument("--max-linger", type=float, default=0.002,
                         help="dynamic batcher max linger (seconds)")
    p_shard.add_argument("--log", default=None, help="structured shard log path")
    p_shard.add_argument("--port-file", default=None,
                         help="file to write host:port into once listening")
    p_shard.set_defaults(func=_cmd_cluster_shard)

    p_up = cluster_sub.add_parser(
        "up", help="launch a local cluster of shard subprocesses"
    )
    p_up.add_argument("--grammar", "-g", default="english")
    p_up.add_argument("--engine", "-e", default="vector", help=engine_help)
    p_up.add_argument("--shards", type=int, default=2)
    p_up.add_argument("--workers", "-w", type=int, default=1,
                      help="service workers per shard")
    p_up.add_argument("--workers-mode", choices=("thread", "process"), default="thread")
    p_up.add_argument("--kernel-backend", default=None, help=backend_help)
    p_up.add_argument("--run-dir", default=None,
                      help="directory for port files and shard logs")
    p_up.set_defaults(func=_cmd_cluster_up)

    p_cbench = cluster_sub.add_parser(
        "bench",
        help="cluster load benchmark: bit-identity gate, closed+open loop, "
        "log-derived latency percentiles",
    )
    p_cbench.add_argument("--grammar", "-g", default="english")
    p_cbench.add_argument("--engine", "-e", default="vector", help=engine_help)
    p_cbench.add_argument("--shards", type=int, default=2)
    p_cbench.add_argument("--workers", "-w", type=int, default=1)
    p_cbench.add_argument("--workers-mode", choices=("thread", "process"), default="thread")
    p_cbench.add_argument("--concurrency", type=int, default=4,
                          help="closed-loop concurrent callers")
    p_cbench.add_argument("--quick", action="store_true",
                          help="small corpus and short loops (CI smoke)")
    p_cbench.add_argument("--out", default="BENCH_cluster.json",
                          help="where to write the JSON record")
    p_cbench.set_defaults(func=_cmd_cluster_bench)

    p_bmm = sub.add_parser(
        "bench-bmm",
        help="kernel benchmark: BMM microbench + both parsers on the "
        "shared kernel core (bit-identity gated)",
    )
    p_bmm.add_argument("--quick", action="store_true",
                       help="small operands and short loops (CI smoke)")
    p_bmm.add_argument("--out", default="BENCH_bmm.json",
                       help="where to write the JSON record")
    p_bmm.set_defaults(func=_cmd_bench_bmm)

    p_cal = sub.add_parser(
        "calibrate",
        help="race kernel backends over representative sizes and persist "
        "the winning dispatch table for backend='auto'",
    )
    p_cal.add_argument("--quick", action="store_true",
                       help="small size grid (CI smoke)")
    p_cal.add_argument("--force", action="store_true",
                       help="discard the persisted table and re-race everything")
    p_cal.set_defaults(func=_cmd_calibrate)

    p_explain = sub.add_parser(
        "explain", help="trace a parse and show what each constraint eliminated"
    )
    p_explain.add_argument("words", nargs="+")
    p_explain.add_argument("--grammar", "-g", default="english")
    p_explain.add_argument("--engine", "-e", default="vector", help=engine_help)
    p_explain.add_argument(
        "--all-phases", action="store_true", help="include phases that eliminated nothing"
    )
    p_explain.set_defaults(func=_cmd_explain)

    return parser


def main(argv: Sequence[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
