"""Reader: token stream -> s-expression AST."""

from __future__ import annotations

from repro.errors import SexprSyntaxError
from repro.sexpr.nodes import Atom, SList, SNode
from repro.sexpr.tokenizer import Token, tokenize_all


class _Reader:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    def peek(self) -> Token:
        if self.at_end():
            last = self._tokens[-1] if self._tokens else None
            raise SexprSyntaxError(
                "unexpected end of input",
                last.line if last else 1,
                last.column if last else 1,
            )
        return self._tokens[self._pos]

    def next(self) -> Token:
        tok = self.peek()
        self._pos += 1
        return tok

    def read_node(self) -> SNode:
        tok = self.next()
        if tok.kind == "(":
            items: list[SNode] = []
            while True:
                if self.at_end():
                    raise SexprSyntaxError("unbalanced '(' — missing ')'", tok.line, tok.column)
                if self.peek().kind == ")":
                    close = self.next()
                    del close
                    return SList(tuple(items), tok.line, tok.column)
                items.append(self.read_node())
        if tok.kind == ")":
            raise SexprSyntaxError("unbalanced ')'", tok.line, tok.column)
        if tok.kind == "int":
            return Atom(int(tok.text), tok.line, tok.column)
        return Atom(tok.text, tok.line, tok.column)


def parse_one(source: str) -> SNode:
    """Parse exactly one s-expression from *source*.

    Raises:
        SexprSyntaxError: if the source is empty or contains trailing forms.
    """
    reader = _Reader(tokenize_all(source))
    node = reader.read_node()
    if not reader.at_end():
        extra = reader.peek()
        raise SexprSyntaxError("trailing content after the first expression", extra.line, extra.column)
    return node


def parse_all(source: str) -> list[SNode]:
    """Parse every top-level s-expression in *source* (possibly none)."""
    reader = _Reader(tokenize_all(source))
    nodes: list[SNode] = []
    while not reader.at_end():
        nodes.append(reader.read_node())
    return nodes
