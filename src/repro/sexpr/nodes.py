"""AST nodes produced by the s-expression reader.

The AST is a classic two-variant tree: :class:`Atom` for symbols and
integers, :class:`SList` for parenthesised forms.  Both carry source
positions so the constraint compilers can report precise errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

SNode = Union["Atom", "SList"]


@dataclass(frozen=True)
class Atom:
    """A leaf node: a symbol (``x``, ``SUBJ``, ``nil``) or an integer.

    Attributes:
        value: the symbol text (``str``) or the integer value (``int``).
        line: 1-based source line (0 for synthesized nodes).
        column: 1-based source column (0 for synthesized nodes).
    """

    value: str | int
    line: int = 0
    column: int = 0

    @property
    def is_symbol(self) -> bool:
        return isinstance(self.value, str)

    @property
    def is_int(self) -> bool:
        return isinstance(self.value, int)

    def symbol(self) -> str:
        """Return the symbol text; raises :class:`TypeError` for integers."""
        if not isinstance(self.value, str):
            raise TypeError(f"atom {self.value!r} is not a symbol")
        return self.value

    def lowered(self) -> str:
        """Return the symbol text lower-cased (keyword comparison helper)."""
        return self.symbol().lower()

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return str(self.value)


@dataclass(frozen=True)
class SList:
    """A parenthesised form ``(head arg1 arg2 ...)``.

    Attributes:
        items: the child nodes, in source order.
        line: 1-based line of the opening parenthesis.
        column: 1-based column of the opening parenthesis.
    """

    items: tuple[SNode, ...]
    line: int = 0
    column: int = 0

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[SNode]:
        return iter(self.items)

    def __getitem__(self, index: int) -> SNode:
        return self.items[index]

    @property
    def head_symbol(self) -> str | None:
        """The head as a lower-cased symbol, or ``None`` if not a symbol."""
        if self.items and isinstance(self.items[0], Atom) and self.items[0].is_symbol:
            return self.items[0].lowered()
        return None

    @property
    def args(self) -> tuple[SNode, ...]:
        return self.items[1:]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "(" + " ".join(str(item) for item in self.items) + ")"


def sexpr_to_str(node: SNode) -> str:
    """Render *node* back to canonical s-expression text."""
    if isinstance(node, Atom):
        return str(node.value)
    return "(" + " ".join(sexpr_to_str(item) for item in node.items) + ")"
