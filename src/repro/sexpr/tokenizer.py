"""Tokenizer for the s-expression constraint syntax.

The token language is deliberately small: parentheses, integers, and
symbols.  Comments run from ``;`` to end of line, mirroring Lisp.  Symbols
are case-sensitive except that the reader layer treats grammar keywords
(``if``, ``and`` ...) case-insensitively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SexprSyntaxError

#: Characters that terminate a symbol token.
_DELIMITERS = frozenset("()' \t\r\n;")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: one of ``"("``, ``")"``, ``"int"``, ``"symbol"``.
        text: the raw source text of the token.
        line: 1-based source line.
        column: 1-based source column.
    """

    kind: str
    text: str
    line: int
    column: int

    def as_int(self) -> int:
        """Return the integer value of an ``int`` token."""
        if self.kind != "int":
            raise SexprSyntaxError(f"token {self.text!r} is not an integer", self.line, self.column)
        return int(self.text)


def _is_int_literal(text: str) -> bool:
    body = text[1:] if text[:1] in "+-" else text
    return body.isdigit() and bool(body)


def tokenize(source: str) -> Iterator[Token]:
    """Yield :class:`Token` objects for *source*.

    Raises:
        SexprSyntaxError: on characters that cannot start a token.
    """
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == ";":
            # Comment to end of line.
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch in "()":
            yield Token(ch, ch, line, column)
            i += 1
            column += 1
            continue
        if ch == "'":
            # Quote is tolerated (and ignored) so grammars can quote symbols
            # the way the paper's Lisp-flavoured examples sometimes do.
            i += 1
            column += 1
            continue
        if ch == '"':
            raise SexprSyntaxError("string literals are not part of the constraint language", line, column)
        # Symbol or integer: scan to the next delimiter.
        start = i
        start_col = column
        while i < n and source[i] not in _DELIMITERS:
            i += 1
            column += 1
        text = source[start:i]
        kind = "int" if _is_int_literal(text) else "symbol"
        yield Token(kind, text, line, start_col)


def tokenize_all(source: str) -> list[Token]:
    """Eagerly tokenize *source* into a list."""
    return list(tokenize(source))
