"""S-expression front end for the CDG constraint language.

The paper writes constraints in a Lisp-like surface syntax::

    (if (and (eq (cat (word (pos x))) verb)
             (eq (role x) governor))
        (and (eq (lab x) ROOT)
             (eq (mod x) nil)))

This package provides the lexer (:mod:`repro.sexpr.tokenizer`), the reader
(:mod:`repro.sexpr.reader`) and the tiny AST (:mod:`repro.sexpr.nodes`)
shared by the scalar and vector constraint compilers.
"""

from repro.sexpr.nodes import Atom, SList, SNode
from repro.sexpr.reader import parse_all, parse_one
from repro.sexpr.tokenizer import Token, tokenize

__all__ = [
    "Atom",
    "SList",
    "SNode",
    "Token",
    "tokenize",
    "parse_one",
    "parse_all",
]
