"""Word-at-a-time incremental parsing: the streaming execute layer.

The CN representation is monotone — propagation only ever eliminates
role values — which makes incremental parsing natural: extending an
n-word network to n+1 words only *adds* role domains and arc-matrix
blocks, so prior eliminations remain valid and propagation can resume
instead of reparsing from scratch.

What actually carries over is the **pre-fixpoint** state: the network
after sequential unary kills and the fused binary mask, *before*
consistency maintenance.  That state is prefix-stable — elementwise
constraint evaluation over the old role values does not depend on
sentence length, so every old-value elimination (and every surviving
matrix bit) is exactly what a fresh parse of the longer prefix would
produce at the same point.  The *settled* state is not: consistency
kills are support-based, and the new word's role values can restore
support to a value an earlier fixpoint eliminated.

Prefix-stability has a sharper consequence the fast path exploits: the
pre-fixpoint state is a *pure function of the extended template's
masks*.  Binding the extended template fresh and re-applying the
(incrementally extended) masks reconstructs it bit for bit, without
touching the predecessor network — so the carried state a stream needs
is exactly the masks the prefix-extended template already caches, and
the per-token arc-matrix work stays on the cheap word-wide AND path.
The explicit embedding form
(:meth:`~repro.network.network.ConstraintNetwork.extend_from` +
:func:`~repro.propagation.incremental.resume_propagation`) exists for
the state that is **not** recomputable from grammar masks — a network
refined by staged extra constraints
(:func:`~repro.propagation.incremental.apply_constraint`) — and
reaches the identical settled network on plain grammar state, which the
streaming tests assert.  Either way the consistency fixpoint reruns in
full; determinism of the sweep then makes the settled network, the
verdict, and every elimination counter bit-identical to a fresh full
parse of the prefix.  Tests sweep that invariant per word, per engine.

The fast resumable path engages exactly when the session's engine is
the fused packed :class:`~repro.engines.vector.VectorEngine` with no
filter limit — the same gate the engine itself uses for its fused
kernel.  Any other configuration falls back to a fresh
``session.parse`` of the prefix (still sharing the prefix-extended
template, so the O(NV^2) build work is incremental either way).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.engines.base import EngineStats, ParseResult
from repro.engines.vector import VectorEngine
from repro.errors import ConcurrentSessionUse, StreamError
from repro.grammar.grammar import Sentence
from repro.propagation.incremental import apply_masks, run_filtering

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.pipeline.session import ParserSession
    from repro.pipeline.template import NetworkTemplate


class StreamingParse:
    """A handle over one growing sentence: ``extend(word)`` per token.

    Open one with :meth:`ParserSession.stream`.  Each ``extend`` returns
    the :class:`~repro.engines.base.ParseResult` of the prefix parsed so
    far (also available as :meth:`result`), bit-identical to
    ``session.parse`` of the same words.  Handles are single-threaded,
    like the sessions they ride on.  An unknown word is rejected at the
    door (:class:`~repro.errors.LexiconError`) and leaves the stream
    usable; an error *during* the parse step marks the stream
    ``broken`` — retained incremental state cannot be trusted past a
    partial application — and every later ``extend`` raises
    :class:`~repro.errors.StreamError`.
    """

    def __init__(self, session: "ParserSession"):
        self._session = session
        self._words: list[str] = []
        self._template: "NetworkTemplate | None" = None
        self._result: ParseResult | None = None
        self._broken = False

    # -- introspection -----------------------------------------------------

    @property
    def words(self) -> tuple[str, ...]:
        return tuple(self._words)

    @property
    def n_words(self) -> int:
        return len(self._words)

    @property
    def broken(self) -> bool:
        return self._broken

    def result(self) -> ParseResult:
        """The settled result of the current prefix."""
        if self._result is None:
            raise StreamError("stream holds no words yet; call extend() first")
        return self._result

    # -- the streaming step ------------------------------------------------

    def extend(self, word: str) -> ParseResult:
        """Append *word* and return the settled result of the new prefix."""
        return self._advance(word)

    def _advance(self, word: str) -> ParseResult:
        if self._broken:
            raise StreamError(
                "stream is broken by an earlier error; open a new stream"
            )
        session = self._session
        # Tokenization failures (an unknown word) reject at the door and
        # leave the stream usable: nothing was applied, so the retained
        # state is still the truth of the accepted prefix.  Failures
        # past this point break the stream instead.
        sent = session.tokenize([*self._words, word])
        try:
            template = session.template_for(sent, prefix=self._template)
            if self._fast_path():
                result = self._advance_fast(sent, template)
            else:
                result = session.parse(sent)
        except BaseException:
            self._broken = True
            raise
        self._words.append(word)
        self._template = template
        self._result = result
        return result

    def _fast_path(self) -> bool:
        """True when the resumable packed/fused path applies.

        The gate mirrors the vector engine's own fused-kernel gate: the
        packed fused schedule with no filter limit.  Everything else
        (interleaved, boolean, serial, simulated machines, bounded
        filtering) reparses the prefix fresh through ``session.parse``
        — bit-identical by engine determinism, just not incremental in
        the propagation.
        """
        engine = self._session.engine
        return (
            isinstance(engine, VectorEngine)
            and engine.packed
            and engine.fused
            and self._session.filter_limit is None
        )

    def _advance_fast(
        self, sent: Sentence, template: "NetworkTemplate"
    ) -> ParseResult:
        session = self._session
        if not session._parse_guard.acquire(blocking=False):
            raise ConcurrentSessionUse(
                "StreamingParse.extend entered while another parse is running; "
                "sessions are single-threaded — use repro.serve.ParseService "
                "streams to feed tokens from multiple threads"
            )
        try:
            started = time.perf_counter()
            compiled = session.compiled
            masks = template.vector_masks(compiled)
            # The pre-fixpoint state is a pure function of the extended
            # masks (prefix-stability, see the module docstring), so the
            # resume is a fresh bind of the prefix-extended template plus
            # the mask application — the incremental work already
            # happened when the template extended its cached masks.
            network = template.bind(sent)
            mask_stats = apply_masks(network, masks.unary, masks.fused)
            fixpoint = run_filtering(network)

            nv = template.nv
            stats = EngineStats()
            stats.engine = session.engine.name
            alive_before = nv
            for killed in mask_stats.unary_killed:
                stats.unary_checks += alive_before
                alive_before -= killed
            stats.pair_checks = nv * nv * len(compiled.binary)
            stats.role_values_killed = (
                sum(mask_stats.unary_killed) + fixpoint.role_values_killed
            )
            stats.matrix_entries_zeroed = mask_stats.matrix_entries_zeroed
            stats.consistency_passes = fixpoint.consistency_passes
            stats.filtering_iterations = fixpoint.filtering_iterations
            if masks.fused is not None:
                stats.extra["fused_binary_kernel"] = True
            stats.extra["streamed"] = True
            stats.extra["network_bytes"] = network.state_nbytes()
            stats.extra["template_cache_bytes"] = session.cached_bytes()
            stats.wall_seconds = time.perf_counter() - started

            return ParseResult(
                network=network,
                locally_consistent=network.all_domains_nonempty(),
                ambiguous=network.is_ambiguous(),
                stats=stats,
            )
        finally:
            session._parse_guard.release()
