"""The execute layer: a batched parsing front end.

A :class:`ParserSession` owns everything that amortizes across
sentences under one grammar — the compiled constraint program, the
bounded LRU of network templates (keyed by sentence shape), and the
engine instance — and exposes ``parse`` / ``parse_many``.  This is the
paper's serving shape: the constraint program is fixed, sentences
stream through.

The naive path (:meth:`repro.engines.base.ParserEngine.parse`) remains
as a thin wrapper that builds a throwaway session per call, so one-shot
callers keep working while batch callers get the amortization::

    session = ParserSession(english_grammar(), engine="vector")
    results = session.parse_many(["the dog runs", "dogs bark"])

Sessions are not thread-safe: templates share scratch buffers across
the sentences they bind.  ``parse`` holds a non-blocking re-entrancy
guard and raises :class:`~repro.errors.ConcurrentSessionUse` if a
second thread enters while a parse is running — concurrent callers
should use :class:`repro.serve.ParseService`, which owns one session
per worker thread.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.engines.base import ParseResult, ParserEngine, TraceHook
from repro.engines.registry import create_engine
from repro.errors import ConcurrentSessionUse
from repro.kernels.backend import KernelBackend, create_backend
from repro.grammar.grammar import CDGGrammar, Sentence
from repro.network.network import ConstraintNetwork
from repro.pipeline.cache import LRUCache
from repro.pipeline.compiled import CompiledGrammar, compile_grammar
from repro.pipeline.template import NetworkTemplate

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.pipeline.streaming import StreamingParse

#: Sentinel distinguishing "not passed" from an explicit None.
_UNSET = object()

#: Default bound on cached templates.  Each template holds O(NV^2)
#: arrays plus (once the vector engine touches it) one mask per binary
#: constraint, so the bound is what keeps long-running sessions flat.
DEFAULT_TEMPLATE_CACHE = 16


class ParserSession:
    """Compile-once, bind-cheap, execute-many CDG parsing.

    Args:
        grammar: the grammar all sentences are parsed under.
        engine: an engine name from the registry (``"serial"``,
            ``"vector"``, ``"pram"``, ``"maspar"``, ``"mesh"``, ...)
            or a :class:`~repro.engines.base.ParserEngine` instance.
        backend: a kernel-backend name from
            :mod:`repro.kernels.backend` (``"packed"``, ``"numpy"``,
            ...) or a :class:`~repro.kernels.backend.KernelBackend`
            instance; None consults ``REPRO_KERNEL_BACKEND`` and
            defaults to ``"packed"``.  Every network the session binds
            runs its packed inner loops on this backend.
        filter_limit: session-default filtering bound (design decision
            5); individual calls may override it.
        template_cache_size: bound on the per-shape template LRU.
    """

    def __init__(
        self,
        grammar: CDGGrammar,
        engine: "str | ParserEngine" = "vector",
        *,
        backend: "str | KernelBackend | None" = None,
        filter_limit: int | None = None,
        template_cache_size: int = DEFAULT_TEMPLATE_CACHE,
    ):
        self.grammar = grammar
        self.compiled: CompiledGrammar = compile_grammar(grammar)
        self.engine: ParserEngine = create_engine(engine)
        self.kernel_backend: KernelBackend = create_backend(backend)
        self.filter_limit = filter_limit
        self._templates: LRUCache[NetworkTemplate] = LRUCache(template_cache_size)
        self._builds = {"full": 0, "extended": 0}
        self._parse_guard = threading.Lock()

    # -- bind --------------------------------------------------------------

    def tokenize(self, sentence: "Sentence | str | Sequence[str]") -> Sentence:
        if isinstance(sentence, Sentence):
            return sentence
        return self.grammar.tokenize(sentence)

    def template_for(
        self,
        sentence: "Sentence | str | Sequence[str]",
        *,
        prefix: "NetworkTemplate | None" = None,
    ) -> NetworkTemplate:
        """The (cached) template for *sentence*'s shape.

        With *prefix* — the template of the sentence minus its last
        word, as the streaming layer holds it — a cache miss extends
        the prefix template (scattering its frozen packed base matrix
        and cached constraint masks into the enlarged layout) instead
        of rebuilding the O(NV^2) artifacts from scratch; streaming a
        sentence costs one cumulative build, not one per prefix.
        ``template_builds()`` breaks the two build kinds out.
        """
        sent = self.tokenize(sentence)
        key = sent.category_sets
        template = self._templates.get(key)
        if template is None:
            if (
                prefix is not None
                and prefix.grammar is self.grammar
                and prefix.category_sets == key[:-1]
            ):
                template = prefix.extend(key[-1], compiled=self.compiled)
                self._builds["extended"] += 1
            else:
                template = NetworkTemplate.build(self.grammar, sent.category_sets)
                self._builds["full"] += 1
            self._templates.put(key, template)
        template.kernel_backend = self.kernel_backend
        return template

    def network(self, sentence: "Sentence | str | Sequence[str]") -> ConstraintNetwork:
        """A fresh, unpropagated network for *sentence* (cached shape)."""
        sent = self.tokenize(sentence)
        return self.template_for(sent).bind(sent)

    def stream(self, words: Iterable[str] = ()) -> "StreamingParse":
        """Open a word-at-a-time incremental parse.

        Each ``extend(word)`` on the returned handle settles the grown
        prefix and returns its :class:`~repro.engines.base.ParseResult`,
        bit-identical to ``parse()`` of the same words; templates are
        grown by prefix extension rather than rebuilt per length.  Any
        *words* given here are fed immediately.
        """
        from repro.pipeline.streaming import StreamingParse

        stream = StreamingParse(self)
        for word in words:
            stream.extend(word)
        return stream

    # -- execute -----------------------------------------------------------

    def parse(
        self,
        sentence: "Sentence | str | Sequence[str]",
        *,
        filter_limit: "int | None | object" = _UNSET,
        trace: TraceHook | None = None,
    ) -> ParseResult:
        """Parse one sentence through the session's caches.

        Raises:
            ConcurrentSessionUse: if another thread is already inside
                ``parse`` on this session (cheap non-blocking check).
        """
        if not self._parse_guard.acquire(blocking=False):
            raise ConcurrentSessionUse(
                "ParserSession.parse entered while another parse is running; "
                "sessions are single-threaded — use repro.serve.ParseService "
                "to parse from multiple threads"
            )
        try:
            sent = self.tokenize(sentence)
            network = self.template_for(sent).bind(sent)
            if trace:
                trace("built", network)
            limit = self.filter_limit if filter_limit is _UNSET else filter_limit
            started = time.perf_counter()
            stats = self.engine.run(
                network, compiled=self.compiled, filter_limit=limit, trace=trace
            )
            stats.wall_seconds = time.perf_counter() - started
            stats.engine = self.engine.name
            # Memory accounting: engines that work on a boolean
            # representation record their own footprint before their
            # finally-repack; default to the settled (packed) state.
            stats.extra.setdefault("network_bytes", network.state_nbytes())
            stats.extra["template_cache_bytes"] = self.cached_bytes()
            stats.extra.setdefault("kernel_backend", self.kernel_backend.name)
            dispatch = self.kernel_backend.dispatch_snapshot()
            if dispatch is not None:
                stats.extra.setdefault("kernel_dispatch", dispatch)
            return ParseResult(
                network=network,
                locally_consistent=network.all_domains_nonempty(),
                ambiguous=network.is_ambiguous(),
                stats=stats,
            )
        finally:
            self._parse_guard.release()

    def parse_many(
        self,
        sentences: Iterable["Sentence | str | Sequence[str]"],
        *,
        filter_limit: "int | None | object" = _UNSET,
        trace: TraceHook | None = None,
    ) -> list[ParseResult]:
        """Parse a batch; results are index-aligned with the input.

        Result-equivalent to ``[session.parse(s) for s in sentences]``
        — the equality is a test invariant — but the batch is executed
        grouped by sentence shape (groups in order of each shape's
        first arrival, results restored to arrival order), so
        template-cache churn is bounded by the number of *distinct*
        shapes in the batch rather than by arrival order: a
        shape-interleaved stream through a small LRU costs one miss per
        shape instead of one per sentence.
        """
        sents = [self.tokenize(sentence) for sentence in sentences]
        groups: dict[tuple, list[int]] = {}
        for index, sent in enumerate(sents):
            groups.setdefault(sent.category_sets, []).append(index)
        results: list[ParseResult | None] = [None] * len(sents)
        for indices in groups.values():
            for index in indices:
                results[index] = self.parse(
                    sents[index], filter_limit=filter_limit, trace=trace
                )
        return results

    # -- introspection -----------------------------------------------------

    def cache_info(self) -> dict[str, int]:
        """Template-cache counters (hits/misses/evictions/size)."""
        return self._templates.info()

    def template_builds(self) -> dict[str, int]:
        """Template constructions by kind: ``full`` vs prefix-``extended``."""
        return dict(self._builds)

    def cached_bytes(self) -> int:
        """Approximate bytes held by the cached templates."""
        return sum(t.nbytes() for t in self._templates._data.values())

    def clear_caches(self) -> None:
        self._templates.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.cache_info()
        return (
            f"ParserSession({self.grammar.name!r}, engine={self.engine.name!r}, "
            f"templates={info['size']}/{info['maxsize']})"
        )
