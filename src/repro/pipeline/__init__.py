"""The compile -> bind -> execute pipeline.

Three layers, mirroring what is fixed at each timescale:

* **compile** (per grammar): :func:`compile_grammar` ->
  :class:`CompiledGrammar` — constraints partitioned by arity with both
  evaluators materialized, symbol tables frozen.
* **bind** (per sentence shape): :class:`NetworkTemplate` — field
  arrays, base masks and category tables for one
  ``(grammar, n, category-signature)``, cached behind a bounded LRU;
  ``template.bind(sentence)`` stamps out a network cheaply.
* **execute** (per sentence): :class:`ParserSession` — owns the caches
  and an engine, exposes ``parse`` / ``parse_many``; for a sentence
  arriving a word at a time, ``session.stream()`` opens a
  :class:`StreamingParse` whose per-token ``extend`` rides
  prefix-extended templates instead of rebuilding.

See ``docs/architecture.md`` ("Pipeline: compile -> bind -> execute"
and "Incremental streaming core").
"""

from repro.pipeline.cache import LRUCache
from repro.pipeline.compiled import CompiledConstraint, CompiledGrammar, compile_grammar
from repro.pipeline.session import ParserSession
from repro.pipeline.streaming import StreamingParse
from repro.pipeline.template import NetworkTemplate, VectorMasks

__all__ = [
    "CompiledConstraint",
    "CompiledGrammar",
    "compile_grammar",
    "LRUCache",
    "NetworkTemplate",
    "VectorMasks",
    "ParserSession",
    "StreamingParse",
]
