"""The compile layer: per-grammar artifacts, materialized once.

The paper's amortization argument is that the constraint program is
fixed while sentences stream through the PE array.  The repository used
to re-derive the per-grammar pieces lazily on every parse path
(``grammar.unary_constraints`` filters the constraint list each access;
the scalar/vector compilers hide behind ``cached_property``).
:func:`compile_grammar` materializes all of it once per grammar object:

* constraints pre-partitioned into unary and binary, in grammar order
  (the propagation order every engine follows);
* the scalar closure and the vector evaluator of every constraint,
  forced eagerly so the first parse pays no compile cost;
* the label/category/role tables frozen into tuples.

A :class:`CompiledConstraint` exposes the same ``name`` / ``vector`` /
``scalar`` surface the engines and the PARSEC kernels already consume,
so compiled artifacts drop into the existing kernels unchanged.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

from repro.constraints.constraint import Constraint
from repro.constraints.scalar import ScalarFn
from repro.constraints.vector import VectorFn
from repro.grammar.grammar import CDGGrammar


@dataclass(frozen=True)
class CompiledConstraint:
    """One constraint with both evaluators materialized.

    ``vector`` and ``scalar`` are the compiled functions themselves
    (not properties), so per-PE programs can close over them directly.
    """

    name: str
    arity: int
    index: int  # position in the grammar's constraint list
    constraint: Constraint
    scalar: ScalarFn = field(repr=False)
    vector: VectorFn = field(repr=False)

    @property
    def source(self) -> str:
        return self.constraint.source


@dataclass(frozen=True)
class CompiledGrammar:
    """Everything per-grammar the execute layer needs, frozen.

    Attributes:
        grammar: the source grammar (kept for symbol tables/lexicon).
        unary: unary constraints in propagation order.
        binary: binary constraints in propagation order.
        labels / categories / roles: frozen name tables.
    """

    grammar: CDGGrammar
    unary: tuple[CompiledConstraint, ...]
    binary: tuple[CompiledConstraint, ...]
    labels: tuple[str, ...]
    categories: tuple[str, ...]
    roles: tuple[str, ...]

    @property
    def n_roles(self) -> int:
        return len(self.roles)

    @property
    def k(self) -> int:
        """Total constraint count — the paper's running-time factor."""
        return len(self.unary) + len(self.binary)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledGrammar({self.grammar.name!r}: "
            f"{len(self.unary)} unary + {len(self.binary)} binary)"
        )


#: One compiled form per live grammar object; entries die with the grammar.
_COMPILED: "weakref.WeakKeyDictionary[CDGGrammar, CompiledGrammar]" = (
    weakref.WeakKeyDictionary()
)


def compile_grammar(grammar: CDGGrammar) -> CompiledGrammar:
    """The compiled form of *grammar*, cached per grammar object."""
    cached = _COMPILED.get(grammar)
    if cached is not None:
        return cached

    unary: list[CompiledConstraint] = []
    binary: list[CompiledConstraint] = []
    for index, constraint in enumerate(grammar.constraints):
        compiled = CompiledConstraint(
            name=constraint.name,
            arity=constraint.arity,
            index=index,
            constraint=constraint,
            scalar=constraint.scalar,
            vector=constraint.vector,
        )
        (unary if constraint.is_unary else binary).append(compiled)

    result = CompiledGrammar(
        grammar=grammar,
        unary=tuple(unary),
        binary=tuple(binary),
        labels=grammar.labels,
        categories=grammar.categories,
        roles=grammar.roles,
    )
    _COMPILED[grammar] = result
    return result
