"""A small bounded LRU cache with introspection counters.

``functools.lru_cache`` caches *functions*; the pipeline needs an
*object* cache whose keys are sentence shapes and whose values are
:class:`~repro.pipeline.template.NetworkTemplate` instances, with
explicit bounds (templates hold O(NV^2) arrays, so eviction is what
keeps a long-running :class:`~repro.pipeline.session.ParserSession`
memory-bounded) and hit/miss counters for the cache-efficiency tests
and benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, TypeVar

V = TypeVar("V")


class LRUCache(Generic[V]):
    """Least-recently-used mapping bounded to *maxsize* entries.

    ``maxsize=0`` disables caching entirely: nothing is ever stored,
    every ``get`` is a miss — the cold-path baseline the service
    benchmarks compare against.  The hit/miss/eviction counters are
    public so :meth:`ParseService.snapshot` can aggregate them across
    worker sessions.

    ``on_evict`` (optional) is called with each value as it leaves the
    cache — on LRU eviction, on :meth:`clear`, and on displacement by a
    ``put`` to an existing key — so values owning OS resources (the
    parallel workers cache attached shared-memory segments) can release
    them deterministically instead of waiting for GC.

    **Fork/pickle contract**: caches never cross a process boundary
    populated.  Unpickling an ``LRUCache`` (e.g. in the ``initargs`` of
    a spawn-context pool) yields an *empty* cache with zeroed counters
    and no ``on_evict`` callback — cached values hold process-local
    resources (shared-memory attachments, scratch buffers) that must
    not be inherited; children re-attach lazily and register their own
    callbacks.  Fork-context children do inherit populated parent
    caches page-for-page, which is why the parallel layer builds its
    child-side caches *inside* the pool initializer, never before the
    fork.

    Not thread-safe; sessions are single-threaded by contract.
    """

    def __init__(self, maxsize: int, *, on_evict: Callable[[V], None] | None = None):
        if maxsize < 0:
            raise ValueError(f"LRU cache needs maxsize >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.on_evict = on_evict
        self._data: OrderedDict[Hashable, V] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __getstate__(self) -> dict:
        # See the fork/pickle contract in the class docstring: the
        # payload and the (unpicklable in general) callback stay behind.
        return {"maxsize": self.maxsize}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["maxsize"])

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> V | None:
        """The cached value, refreshed to most-recently-used; else None."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: V) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry when full."""
        if self.maxsize == 0:
            return
        if key in self._data:
            displaced = self._data[key]
            self._data.move_to_end(key)
            self._data[key] = value
            if displaced is not value and self.on_evict is not None:
                self.on_evict(displaced)
            return
        self._data[key] = value
        while len(self._data) > self.maxsize:
            _, evicted = self._data.popitem(last=False)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted)

    def clear(self) -> None:
        if self.on_evict is not None:
            for value in self._data.values():
                self.on_evict(value)
        self._data.clear()

    def info(self) -> dict[str, int]:
        """Counters for cache-efficiency reporting."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
