"""The bind layer: per-sentence-shape network templates.

Everything :class:`~repro.network.network.ConstraintNetwork` used to
compute in ``__init__`` depends only on the *shape* of the sentence —
its length and per-position category sets — never on the surface words:
the role-value enumeration, the field arrays, the O(NV^2) same-role and
category-clash base masks, and the category tables.  A
:class:`NetworkTemplate` computes all of that once per
``(grammar, n, category-signature)`` and stamps out networks with
:meth:`bind`, which only allocates the two genuinely per-sentence
arrays (a fresh ``alive`` vector and a copy of the base matrix).

Templates are what :class:`~repro.pipeline.session.ParserSession`
caches behind its bounded LRU; they also own the lazily-computed
artifacts the execute layer shares across every network bound from the
same shape:

* the symmetrized vector-evaluation masks of every constraint (a pure
  function of the field arrays — the single biggest per-parse cost);
* the consistency-maintenance segment tables (role starts for
  ``reduceat``);
* an ``(NV, NV)`` scratch buffer reused by consistency maintenance.

Shared arrays are frozen (``writeable=False``) so an engine bug that
tried to mutate template state across sentences fails loudly instead of
corrupting later parses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import NetworkError
from repro.grammar.grammar import CDGGrammar, Sentence
from repro.network import bitset
from repro.network.bitset import BitLayout
from repro.network.rolevalue import RoleValue, enumerate_role_values
from repro.pipeline.compiled import CompiledGrammar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.network.network import ConstraintNetwork

#: Cache key of a sentence shape under one grammar.
ShapeKey = tuple[frozenset[int], ...]


def _frozen(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


class VectorMasks:
    """Per-template constraint evaluations for the vector execute path.

    ``unary[i]`` is the permitted ``(NV,)`` bool vector of the i-th
    unary constraint; ``binary[i]`` the orientation-symmetrized
    permitted mask of the i-th binary constraint (already
    ``permitted & permitted.T``).  With ``packed=True`` (the cached
    default) each binary mask is a packed ``(NV, n_words)`` uint64
    array ready to AND into the network's bit matrices — ~8x smaller
    per cache entry than the boolean form, which
    :meth:`NetworkTemplate.vector_masks_bool` materializes lazily for
    the byte-per-bool comparison engine.

    ``fused`` is the word-wide AND of every packed binary mask (``None``
    in the boolean form, or when the grammar has no binary constraints).
    Maruyama's eliminations are monotone and order-independent up to the
    fixpoint, so the no-trace fast path may apply this one combined mask
    and run a single consistency fixpoint instead of interleaving
    ``k_b`` mask applications with ``k_b`` full sweeps — bit-identical
    at the fixpoint, ~``k_b``x fewer sweeps.
    """

    __slots__ = ("unary", "binary", "fused", "packed")

    def __init__(
        self,
        unary: tuple[np.ndarray, ...],
        binary: tuple[np.ndarray, ...],
        packed: bool,
        fused: np.ndarray | None = None,
    ):
        self.unary = unary
        self.binary = binary
        self.fused = fused
        self.packed = packed


class NetworkTemplate:
    """The cacheable per-shape half of a constraint network."""

    def __init__(
        self,
        grammar: CDGGrammar,
        category_sets: ShapeKey,
        *,
        base_bits: np.ndarray | None = None,
    ):
        self.grammar = grammar
        self.category_sets: ShapeKey = tuple(category_sets)
        n = len(self.category_sets)
        q = grammar.n_roles
        self.n_words = n
        self.n_roles_per_word = q
        self.n_roles = n * q

        role_values: list[RoleValue] = []
        slices: list[slice] = []
        for pos in range(1, n + 1):
            cats = self.category_sets[pos - 1]
            for role in range(q):
                start = len(role_values)
                role_values.extend(
                    enumerate_role_values(pos, role, cats, grammar.allowed_labels, n)
                )
                slices.append(slice(start, len(role_values)))
        if not role_values:
            raise NetworkError("constraint network has no role values")

        self.role_values: tuple[RoleValue, ...] = tuple(role_values)
        self.role_slices: tuple[slice, ...] = tuple(slices)
        nv = len(role_values)
        self.nv = nv

        # Field arrays (the vector backend's inputs), shared read-only
        # by every network bound from this template.
        self.pos = _frozen(np.fromiter((rv.pos for rv in role_values), dtype=np.int32, count=nv))
        self.role_kind = _frozen(
            np.fromiter((rv.role for rv in role_values), dtype=np.int32, count=nv)
        )
        self.cat = _frozen(np.fromiter((rv.cat for rv in role_values), dtype=np.int32, count=nv))
        self.lab = _frozen(np.fromiter((rv.lab for rv in role_values), dtype=np.int32, count=nv))
        self.mod = _frozen(np.fromiter((rv.mod for rv in role_values), dtype=np.int32, count=nv))
        self.role_index = _frozen((self.pos - 1) * q + self.role_kind)

        # The O(NV^2) base mask: all-ones across distinct roles
        # ("initially, all entries in the matrices are set to 1"),
        # minus category coherence for lexically ambiguous words.
        # Stored packed (the boolean expansion is a lazy property), so a
        # cached template carries NV * row_bytes, not NV^2, bytes.  A
        # caller holding an already-packed copy — a worker process
        # attaching a SharedTemplateStore block — passes it in and skips
        # the quadratic recompute; everything above this point is O(NV).
        self.bit_layout = BitLayout(self.role_slices)
        if base_bits is None:
            same_role = self.role_index[:, None] == self.role_index[None, :]
            base = ~same_role
            same_word = self.pos[:, None] == self.pos[None, :]
            cat_clash = same_word & (self.cat[:, None] != self.cat[None, :])
            base &= ~cat_clash
            base_bits = bitset.pack_rows(base, self.bit_layout)
        elif base_bits.shape != (nv, self.bit_layout.n_words):
            raise NetworkError(
                f"precomputed base_bits shape {base_bits.shape} does not match "
                f"template shape {(nv, self.bit_layout.n_words)}"
            )
        self.base_bits = _frozen(base_bits)
        self._base_bool: np.ndarray | None = None

        # Category tables for constraint evaluation (word-independent:
        # they are a function of the category sets alone).
        canbe = np.zeros((n + 1, len(grammar.symbols.categories)), dtype=bool)
        for position, cats in enumerate(self.category_sets, start=1):
            for code in cats:
                canbe[position, code] = True
        self.canbe_array = _frozen(canbe)
        self.canbe_sets: tuple[frozenset[int], ...] = (frozenset(),) + self.category_sets

        # Segment tables for reduceat-based domain counts and support
        # checks.  Roles with structurally empty domains (no admissible
        # label for any category) get no segment; consumers must treat
        # them as never supported / always empty.
        lengths = np.fromiter(
            (sl.stop - sl.start for sl in self.role_slices), dtype=np.intp, count=self.n_roles
        )
        starts = np.fromiter(
            (sl.start for sl in self.role_slices), dtype=np.intp, count=self.n_roles
        )
        nonempty = lengths > 0
        self.nonempty_roles = _frozen(np.nonzero(nonempty)[0])
        self.nonempty_starts = _frozen(starts[nonempty])
        self.has_empty_roles = bool((~nonempty).any())

        # Lazy artifacts.
        self._masks: VectorMasks | None = None
        self._masks_for: CompiledGrammar | None = None
        self._masks_bool: VectorMasks | None = None
        self._masks_bool_for: CompiledGrammar | None = None
        self._scratch: np.ndarray | None = None
        self._scratch_bits: np.ndarray | None = None

    @property
    def base_matrix(self) -> np.ndarray:
        """The boolean expansion of ``base_bits`` (lazy, frozen, cached)."""
        if self._base_bool is None:
            self._base_bool = _frozen(bitset.unpack_rows(self.base_bits, self.bit_layout))
        return self._base_bool

    # -- cache key ---------------------------------------------------------

    @classmethod
    def build(cls, grammar: CDGGrammar, category_sets: ShapeKey) -> "NetworkTemplate":
        return cls(grammar, category_sets)

    @classmethod
    def from_shared(
        cls,
        grammar: CDGGrammar,
        category_sets: ShapeKey,
        compiled: CompiledGrammar,
        *,
        base_bits: np.ndarray,
        masks: VectorMasks,
    ) -> "NetworkTemplate":
        """Rebuild a template around arrays attached from shared memory.

        The cheap O(NV) skeleton (role-value enumeration, field arrays,
        category and segment tables) is recomputed locally; the O(NV^2)
        ``base_bits`` and the constraint masks — the expensive artifacts
        — come in as read-only views over a
        :class:`~repro.parallel.shared.SharedTemplateStore` block, so a
        worker process never recomputes or copies them.
        """
        template = cls(grammar, category_sets, base_bits=base_bits)
        template._masks = masks
        template._masks_for = compiled
        return template

    @property
    def key(self) -> ShapeKey:
        """The per-grammar cache key: the sentence's category signature."""
        return self.category_sets

    # -- binding -----------------------------------------------------------

    def bind(self, sentence: Sentence) -> "ConstraintNetwork":
        """Stamp out a fresh network for *sentence* from this template."""
        from repro.network.network import ConstraintNetwork

        network = object.__new__(ConstraintNetwork)
        self.fill(network, sentence)
        return network

    def fill(self, network: "ConstraintNetwork", sentence: Sentence) -> None:
        """Populate *network* in place (the shared ``__init__`` body)."""
        if sentence.category_sets != self.category_sets:
            raise NetworkError(
                "sentence shape does not match template "
                f"(n={len(sentence)} vs template n={self.n_words})"
            )
        network.grammar = self.grammar
        network.sentence = sentence
        network.template = self
        network.n_words = self.n_words
        network.n_roles_per_word = self.n_roles_per_word
        network.n_roles = self.n_roles
        network.role_values = self.role_values
        network.role_slices = self.role_slices
        network.nv = self.nv
        network.pos = self.pos
        network.role_kind = self.role_kind
        network.cat = self.cat
        network.lab = self.lab
        network.mod = self.mod
        network.role_index = self.role_index
        network.canbe_array = self.canbe_array
        network.canbe_sets = self.canbe_sets
        # The only genuinely per-sentence state: fresh packed domains
        # and a writable copy of the packed base mask.
        network.bit_layout = self.bit_layout
        network.alive_bits = self.bit_layout.full_words.copy()
        network.matrix_bits = self.base_bits.copy()
        network._bool_mode = False
        network._alive_cache = None
        network._matrix_cache = None

    # -- shared execute-layer artifacts ------------------------------------

    def vector_masks(self, compiled: CompiledGrammar) -> VectorMasks:
        """Constraint evaluations over this template's field arrays.

        Pure functions of (fields, category table) — i.e. of the
        template — so they are computed once and replayed for every
        sentence of this shape.  The first call per template pays the
        full evaluation cost; this is exactly the work the naive
        per-call parse path repeats for every sentence.
        """
        if self._masks is not None and self._masks_for is compiled:
            return self._masks
        from repro.constraints.vector import VectorEnv

        fields = {
            "pos": self.pos,
            "role": self.role_kind,
            "cat": self.cat,
            "lab": self.lab,
            "mod": self.mod,
        }
        unary_env = VectorEnv(x=fields, y=None, canbe=self.canbe_array)
        pair_env = VectorEnv(
            x={k: v[:, None] for k, v in fields.items()},
            y={k: v[None, :] for k, v in fields.items()},
            canbe=self.canbe_array,
        )
        unary = tuple(_frozen(cc.vector(unary_env)) for cc in compiled.unary)
        binary: list[np.ndarray] = []
        for cc in compiled.binary:
            permitted = cc.vector(pair_env)
            binary.append(_frozen(bitset.pack_rows(permitted & permitted.T, self.bit_layout)))
        fused: np.ndarray | None = None
        if binary:
            acc = binary[0].copy()
            for mask in binary[1:]:
                acc &= mask
            fused = _frozen(acc)
        self._masks = VectorMasks(unary=unary, binary=tuple(binary), packed=True, fused=fused)
        self._masks_for = compiled
        return self._masks

    def vector_masks_bool(self, compiled: CompiledGrammar) -> VectorMasks:
        """Boolean expansions of :meth:`vector_masks`, for the byte engine.

        Lazily unpacked from the packed masks (the packed form stays
        the canonical cache entry); only the boolean comparison path
        (``VectorEngine(packed=False)``) ever pays for these.
        """
        if self._masks_bool is not None and self._masks_bool_for is compiled:
            return self._masks_bool
        packed = self.vector_masks(compiled)
        binary = tuple(
            _frozen(bitset.unpack_rows(m, self.bit_layout)) for m in packed.binary
        )
        self._masks_bool = VectorMasks(unary=packed.unary, binary=binary, packed=False)
        self._masks_bool_for = compiled
        return self._masks_bool

    def scratch_matrix(self) -> np.ndarray:
        """A reusable ``(NV, NV)`` bool buffer for consistency sweeps.

        Shared by every network bound from this template; safe because
        sessions (and engines) are single-threaded by contract and the
        buffer never carries state between calls.
        """
        if self._scratch is None:
            self._scratch = np.empty((self.nv, self.nv), dtype=bool)
        return self._scratch

    def scratch_bits(self) -> np.ndarray:
        """A reusable packed ``(NV, n_words)`` buffer for packed sweeps."""
        if self._scratch_bits is None:
            self._scratch_bits = np.empty(
                (self.nv, self.bit_layout.n_words), dtype=bitset.WORD_DTYPE
            )
        return self._scratch_bits

    def nbytes(self) -> int:
        """Approximate resident size, for cache-accounting tests."""
        total = self.base_bits.nbytes + self.canbe_array.nbytes
        total += self.bit_layout.nbytes()
        for arr in (self.pos, self.role_kind, self.cat, self.lab, self.mod, self.role_index):
            total += arr.nbytes
        if self._base_bool is not None:
            total += self._base_bool.nbytes
        if self._scratch is not None:
            total += self._scratch.nbytes
        if self._scratch_bits is not None:
            total += self._scratch_bits.nbytes
        if self._masks is not None:
            total += sum(m.nbytes for m in self._masks.unary)
            total += sum(m.nbytes for m in self._masks.binary)
            if self._masks.fused is not None:
                total += self._masks.fused.nbytes
        if self._masks_bool is not None:
            total += sum(m.nbytes for m in self._masks_bool.binary)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkTemplate({self.grammar.name!r}, n={self.n_words}, "
            f"NV={self.nv}, masks={'yes' if self._masks else 'no'})"
        )
