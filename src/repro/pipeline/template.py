"""The bind layer: per-sentence-shape network templates.

Everything :class:`~repro.network.network.ConstraintNetwork` used to
compute in ``__init__`` depends only on the *shape* of the sentence —
its length and per-position category sets — never on the surface words:
the role-value enumeration, the field arrays, the O(NV^2) same-role and
category-clash base masks, and the category tables.  A
:class:`NetworkTemplate` computes all of that once per
``(grammar, n, category-signature)`` and stamps out networks with
:meth:`bind`, which only allocates the two genuinely per-sentence
arrays (a fresh ``alive`` vector and a copy of the base matrix).

Templates are what :class:`~repro.pipeline.session.ParserSession`
caches behind its bounded LRU; they also own the lazily-computed
artifacts the execute layer shares across every network bound from the
same shape:

* the symmetrized vector-evaluation masks of every constraint (a pure
  function of the field arrays — the single biggest per-parse cost);
* the consistency-maintenance segment tables (role starts for
  ``reduceat``);
* an ``(NV, NV)`` scratch buffer reused by consistency maintenance.

Shared arrays are frozen (``writeable=False``) so an engine bug that
tried to mutate template state across sentences fails loudly instead of
corrupting later parses.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import NetworkError
from repro.grammar.grammar import CDGGrammar, Sentence
from repro.network import bitset
from repro.network.bitset import BitLayout
from repro.network.rolevalue import RoleValue, enumerate_role_values
from repro.pipeline.compiled import CompiledGrammar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.network.network import ConstraintNetwork

#: Cache key of a sentence shape under one grammar.
ShapeKey = tuple[frozenset[int], ...]


def _frozen(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


class VectorMasks:
    """Per-template constraint evaluations for the vector execute path.

    ``unary[i]`` is the permitted ``(NV,)`` bool vector of the i-th
    unary constraint; ``binary[i]`` the orientation-symmetrized
    permitted mask of the i-th binary constraint (already
    ``permitted & permitted.T``).  With ``packed=True`` (the cached
    default) each binary mask is a packed ``(NV, n_words)`` uint64
    array ready to AND into the network's bit matrices — ~8x smaller
    per cache entry than the boolean form, which
    :meth:`NetworkTemplate.vector_masks_bool` materializes lazily for
    the byte-per-bool comparison engine.

    ``fused`` is the word-wide AND of every packed binary mask (``None``
    in the boolean form, or when the grammar has no binary constraints).
    Maruyama's eliminations are monotone and order-independent up to the
    fixpoint, so the no-trace fast path may apply this one combined mask
    and run a single consistency fixpoint instead of interleaving
    ``k_b`` mask applications with ``k_b`` full sweeps — bit-identical
    at the fixpoint, ~``k_b``x fewer sweeps.

    Prefix-extended templates build ``unary`` and ``fused`` eagerly but
    defer the per-constraint ``binary`` tuple behind *binary_thunk*: the
    fused fast path never reads it, and materializing ``k_b`` full
    ``(NV, NV)`` masks is the dominant cost of an extension step.  The
    first ``binary`` access (interleaved/boolean engines, the process
    store, introspection) evaluates and memoizes them.
    """

    __slots__ = ("unary", "_binary", "_binary_thunk", "fused", "packed")

    def __init__(
        self,
        unary: tuple[np.ndarray, ...],
        binary: "tuple[np.ndarray, ...] | None",
        packed: bool,
        fused: np.ndarray | None = None,
        binary_thunk: "Callable[[], tuple[np.ndarray, ...]] | None" = None,
    ):
        if binary is None and binary_thunk is None:
            raise ValueError("deferred binary masks need a binary_thunk")
        self.unary = unary
        self._binary = binary
        self._binary_thunk = binary_thunk
        self.fused = fused
        self.packed = packed

    @property
    def binary(self) -> tuple[np.ndarray, ...]:
        if self._binary is None:
            self._binary = tuple(self._binary_thunk())  # type: ignore[misc]
            self._binary_thunk = None
        return self._binary

    @property
    def binary_materialized(self) -> bool:
        """True once ``binary`` has been (or was eagerly) computed."""
        return self._binary is not None


class NetworkTemplate:
    """The cacheable per-shape half of a constraint network."""

    #: Kernel backend stamped onto every network bound from this
    #: template (see :mod:`repro.kernels.backend`).  A ParserSession
    #: sets it when the caller threads an explicit ``backend=``; None
    #: means bound networks resolve the process default at use time.
    kernel_backend = None

    def __init__(
        self,
        grammar: CDGGrammar,
        category_sets: ShapeKey,
        *,
        base_bits: np.ndarray | None = None,
        prefix: "NetworkTemplate | None" = None,
    ):
        if prefix is not None and base_bits is not None:
            raise NetworkError("pass either a prefix template or precomputed base_bits")
        self.grammar = grammar
        self.category_sets: ShapeKey = tuple(category_sets)
        n = len(self.category_sets)
        q = grammar.n_roles
        self.n_words = n
        self.n_roles_per_word = q
        self.n_roles = n * q

        role_values: list[RoleValue] = []
        slices: list[slice] = []
        for pos in range(1, n + 1):
            cats = self.category_sets[pos - 1]
            for role in range(q):
                start = len(role_values)
                role_values.extend(
                    enumerate_role_values(pos, role, cats, grammar.allowed_labels, n)
                )
                slices.append(slice(start, len(role_values)))
        if not role_values:
            raise NetworkError("constraint network has no role values")

        self.role_values: tuple[RoleValue, ...] = tuple(role_values)
        self.role_slices: tuple[slice, ...] = tuple(slices)
        nv = len(role_values)
        self.nv = nv

        # Field arrays (the vector backend's inputs), shared read-only
        # by every network bound from this template.
        self.pos = _frozen(np.fromiter((rv.pos for rv in role_values), dtype=np.int32, count=nv))
        self.role_kind = _frozen(
            np.fromiter((rv.role for rv in role_values), dtype=np.int32, count=nv)
        )
        self.cat = _frozen(np.fromiter((rv.cat for rv in role_values), dtype=np.int32, count=nv))
        self.lab = _frozen(np.fromiter((rv.lab for rv in role_values), dtype=np.int32, count=nv))
        self.mod = _frozen(np.fromiter((rv.mod for rv in role_values), dtype=np.int32, count=nv))
        self.role_index = _frozen((self.pos - 1) * q + self.role_kind)

        # The O(NV^2) base mask: all-ones across distinct roles
        # ("initially, all entries in the matrices are set to 1"),
        # minus category coherence for lexically ambiguous words.
        # Stored packed (the boolean expansion is a lazy property), so a
        # cached template carries NV * row_bytes, not NV^2, bytes.  A
        # caller holding an already-packed copy — a worker process
        # attaching a SharedTemplateStore block — passes it in and skips
        # the quadratic recompute; everything above this point is O(NV).
        self.bit_layout = (
            BitLayout(self.role_slices)
            if prefix is None
            else prefix.bit_layout.extend(self.role_slices)
        )
        self.prefix_map: np.ndarray | None = None
        self.prefix_new: np.ndarray | None = None
        if prefix is not None:
            self._extend_maps(prefix)
        if base_bits is None:
            same_role = self.role_index[:, None] == self.role_index[None, :]
            base = ~same_role
            same_word = self.pos[:, None] == self.pos[None, :]
            cat_clash = same_word & (self.cat[:, None] != self.cat[None, :])
            base &= ~cat_clash
            base_bits = bitset.pack_rows(base, self.bit_layout)
        elif base_bits.shape != (nv, self.bit_layout.n_words):
            raise NetworkError(
                f"precomputed base_bits shape {base_bits.shape} does not match "
                f"template shape {(nv, self.bit_layout.n_words)}"
            )
        self.base_bits = _frozen(base_bits)
        self._base_bool: np.ndarray | None = None

        # Category tables for constraint evaluation (word-independent:
        # they are a function of the category sets alone).
        canbe = np.zeros((n + 1, len(grammar.symbols.categories)), dtype=bool)
        for position, cats in enumerate(self.category_sets, start=1):
            for code in cats:
                canbe[position, code] = True
        self.canbe_array = _frozen(canbe)
        self.canbe_sets: tuple[frozenset[int], ...] = (frozenset(),) + self.category_sets

        # Segment tables for reduceat-based domain counts and support
        # checks.  Roles with structurally empty domains (no admissible
        # label for any category) get no segment; consumers must treat
        # them as never supported / always empty.
        lengths = np.fromiter(
            (sl.stop - sl.start for sl in self.role_slices), dtype=np.intp, count=self.n_roles
        )
        starts = np.fromiter(
            (sl.start for sl in self.role_slices), dtype=np.intp, count=self.n_roles
        )
        nonempty = lengths > 0
        self.nonempty_roles = _frozen(np.nonzero(nonempty)[0])
        self.nonempty_starts = _frozen(starts[nonempty])
        self.has_empty_roles = bool((~nonempty).any())

        # Lazy artifacts.
        self._masks: VectorMasks | None = None
        self._masks_for: CompiledGrammar | None = None
        self._masks_bool: VectorMasks | None = None
        self._masks_bool_for: CompiledGrammar | None = None
        self._scratch: np.ndarray | None = None
        self._scratch_bits: np.ndarray | None = None
        self._nbytes_cache: "tuple[tuple, int] | None" = None

    @property
    def base_matrix(self) -> np.ndarray:
        """The boolean expansion of ``base_bits`` (lazy, frozen, cached)."""
        if self._base_bool is None:
            self._base_bool = _frozen(bitset.unpack_rows(self.base_bits, self.bit_layout))
        return self._base_bool

    # -- cache key ---------------------------------------------------------

    @classmethod
    def build(cls, grammar: CDGGrammar, category_sets: ShapeKey) -> "NetworkTemplate":
        return cls(grammar, category_sets)

    @classmethod
    def from_shared(
        cls,
        grammar: CDGGrammar,
        category_sets: ShapeKey,
        compiled: CompiledGrammar,
        *,
        base_bits: np.ndarray,
        masks: VectorMasks,
    ) -> "NetworkTemplate":
        """Rebuild a template around arrays attached from shared memory.

        The cheap O(NV) skeleton (role-value enumeration, field arrays,
        category and segment tables) is recomputed locally; the O(NV^2)
        ``base_bits`` and the constraint masks — the expensive artifacts
        — come in as read-only views over a
        :class:`~repro.parallel.shared.SharedTemplateStore` block, so a
        worker process never recomputes or copies them.
        """
        template = cls(grammar, category_sets, base_bits=base_bits)
        template._masks = masks
        template._masks_for = compiled
        return template

    @property
    def key(self) -> ShapeKey:
        """The per-grammar cache key: the sentence's category signature."""
        return self.category_sets

    # -- prefix extension (the streaming build path) -----------------------

    def _extend_maps(self, prefix: "NetworkTemplate") -> None:
        """Carry the old-to-new index maps of a one-word extension.

        Extending the sentence interleaves fresh role values between the
        surviving ones: each old role gains its ``mod = n`` candidates
        and the new word adds whole roles.  Enumeration is ordered by
        (position, role, label, mod), so the survivors are exactly the
        values with ``pos != n and mod != n``, in preserved order — two
        vectorized comparisons, no per-value hashing.  The maps are
        stored as ``prefix_map`` / ``prefix_new`` for mask extension and
        for :meth:`ConstraintNetwork.extend_from`.

        The base matrix is *not* scattered from the prefix: it is pure
        position/role arithmetic, and at sentence-sized NV the
        vectorized formula is cheaper than moving the old packed block.
        The expensive carried artifacts are the constraint masks
        (:meth:`_extend_masks`) and the propagation state
        (:meth:`ConstraintNetwork.extend_from`).
        """
        if prefix.grammar is not self.grammar:
            raise NetworkError("prefix template was built under a different grammar")
        if prefix.category_sets != self.category_sets[:-1]:
            raise NetworkError(
                "prefix template shape is not a one-word prefix of this shape "
                f"(n={prefix.n_words} vs n={self.n_words})"
            )
        old = (self.pos != self.n_words) & (self.mod != self.n_words)
        idx_map = np.nonzero(old)[0]
        if idx_map.size != prefix.nv:
            raise NetworkError(
                "extension did not preserve the prefix's role values "
                f"({idx_map.size} surviving vs {prefix.nv} expected)"
            )
        self.prefix_map = _frozen(idx_map)
        self.prefix_new = _frozen(np.nonzero(~old)[0])

    def extend(
        self, category_set: frozenset[int], *, compiled: CompiledGrammar | None = None
    ) -> "NetworkTemplate":
        """The (n+1)-word template sharing this n-word template's work.

        When *compiled* is given and this template has already evaluated
        its vector masks for it, the unary vectors and the fused binary
        AND are extended instead of re-evaluated: old entries are
        scattered through the preserved-order index maps, and only the
        cross strips where at least one side is a new role value are
        evaluated.  The per-constraint binary masks stay deferred — the
        fused fast path never reads them, and a non-fused consumer
        triggers a full evaluation on first access.  Nothing reachable
        from the predecessor is mutated — extension only reads frozen
        state.
        """
        extended = NetworkTemplate(
            self.grammar,
            self.category_sets + (frozenset(category_set),),
            prefix=self,
        )
        if compiled is not None and self._masks is not None and self._masks_for is compiled:
            extended._extend_masks(self, compiled)
        return extended

    #: Below this many *saved* pair evaluations an incremental mask
    #: extension loses to the plain full evaluation: the scatter
    #: bookkeeping (index maps, strip assigns, fused unpack/repack) has
    #: a fixed cost that small prefixes never amortize.  Expressed in
    #: matrix elements; tuned on the english grammar's n <= 10 sweep.
    _EXTEND_MIN_SAVED_PAIRS = 16384

    def _extend_masks(self, prefix: "NetworkTemplate", compiled: CompiledGrammar) -> None:
        """Extend *prefix*'s cached vector masks into this template.

        Constraint evaluation is elementwise over the field arrays and
        the category table, and the old values' fields (and ``canbe``
        rows) are unchanged by extension, so the prefix's evaluations
        are scattered verbatim; only the rectangular blocks where at
        least one side is a new role value are evaluated.  Bit-identical
        to :meth:`vector_masks` from scratch — a test invariant.

        Small shapes fall back to the plain full evaluation: the cross
        region (``2 * new * NV`` of ``NV^2`` pairs) must undercut the
        full matrix by enough to pay for the scatter bookkeeping.  The
        template is still a prefix *extension* either way — the index
        maps and resumable propagation are untouched; only the mask
        computation strategy switches.
        """
        from repro.constraints.vector import VectorEnv

        idx_map = self.prefix_map
        new_idx = self.prefix_new
        saved = self.nv * self.nv - 2 * new_idx.size * self.nv
        if saved < self._EXTEND_MIN_SAVED_PAIRS:
            self._compute_masks_full(compiled)
            return

        old_masks = prefix._masks
        fields = self._field_arrays()
        new_fields = {k: v[new_idx] for k, v in fields.items()}
        unary_env = VectorEnv(x=new_fields, y=None, canbe=self.canbe_array)
        unary: list[np.ndarray] = []
        if compiled.unary:
            # One batched scatter for every unary constraint: the old
            # vectors land through idx_map, only new values are evaluated.
            unary_all = np.zeros((len(compiled.unary), self.nv), dtype=bool)
            unary_all[:, idx_map] = old_masks.unary
            for i, cc in enumerate(compiled.unary):
                unary_all[i, new_idx] = np.broadcast_to(cc.vector(unary_env), new_idx.shape)
            unary = [_frozen(row) for row in unary_all]

        # The new entries of a symmetrized mask (permitted & permitted.T)
        # need both orientations of the cross: rows = (new x, all y) and
        # the transpose of (all x, new y).  The sym-AND distributes over
        # the per-constraint fold — AND_c [c(i,j) & c(j,i)] equals
        # [AND_c c(i,j)] & [AND_c c(j,i)] — so each orientation is
        # folded separately and combined once; the column strip then
        # only needs the *old* x side (the prefix's own field arrays,
        # direct views), because the new-by-new corner is already in the
        # row fold.  Rectangular broadcast envs keep the field arrays as
        # cheap views — no O(new * NV) gathers.
        row_env = VectorEnv(
            x={k: v[:, None] for k, v in new_fields.items()},
            y={k: v[None, :] for k, v in fields.items()},
            canbe=self.canbe_array,
        )
        col_env = VectorEnv(
            x={k: v[:, None] for k, v in prefix._field_arrays().items()},
            y={k: v[None, :] for k, v in new_fields.items()},
            canbe=self.canbe_array,
        )
        shape = (new_idx.size, self.nv)
        old_shape = (idx_map.size, new_idx.size)
        fused: np.ndarray | None = None
        binary: tuple[np.ndarray, ...] | None = ()
        binary_thunk = None
        if compiled.binary:
            # Only the FUSED mask is materialized in the extended
            # layout: the per-constraint cross strips are AND-folded as
            # they are evaluated, the prefix's fused block is scattered
            # through idx_map, and one pack covers the result.  The
            # per-constraint tuple stays deferred (``binary_thunk``) —
            # scattering k_b full (NV, NV) masks costs more than the
            # whole rest of the extension, and the fused fast path
            # never reads them.
            rows_acc: np.ndarray | None = None
            cols_acc: np.ndarray | None = None
            for cc in compiled.binary:
                rows = np.broadcast_to(cc.vector(row_env), shape)
                cols = np.broadcast_to(cc.vector(col_env), old_shape)
                if rows_acc is None:
                    rows_acc, cols_acc = rows.copy(), cols.copy()
                else:
                    rows_acc &= rows
                    cols_acc &= cols
            acc = rows_acc
            corner = acc[:, new_idx]  # fancy index: a copy of the pure row fold
            acc[:, idx_map] &= cols_acc.T
            acc[:, new_idx] = corner & corner.T
            sym = np.zeros((self.nv, self.nv), dtype=bool)
            sym[np.ix_(idx_map, idx_map)] = bitset.unpack_rows(
                old_masks.fused, prefix.bit_layout
            )
            sym[new_idx, :] = acc
            sym[:, new_idx] = acc.T
            fused = _frozen(bitset.pack_rows(sym, self.bit_layout))
            binary = None
            binary_thunk = functools.partial(self._binary_masks_packed, compiled)
        self._masks = VectorMasks(
            unary=tuple(unary),
            binary=binary,
            packed=True,
            fused=fused,
            binary_thunk=binary_thunk,
        )
        self._masks_for = compiled

    # -- binding -----------------------------------------------------------

    def bind(self, sentence: Sentence) -> "ConstraintNetwork":
        """Stamp out a fresh network for *sentence* from this template."""
        from repro.network.network import ConstraintNetwork

        network = object.__new__(ConstraintNetwork)
        self.fill(network, sentence)
        return network

    def fill(self, network: "ConstraintNetwork", sentence: Sentence) -> None:
        """Populate *network* in place (the shared ``__init__`` body)."""
        if sentence.category_sets != self.category_sets:
            raise NetworkError(
                "sentence shape does not match template "
                f"(n={len(sentence)} vs template n={self.n_words})"
            )
        network.grammar = self.grammar
        network.sentence = sentence
        network.template = self
        network.n_words = self.n_words
        network.n_roles_per_word = self.n_roles_per_word
        network.n_roles = self.n_roles
        network.role_values = self.role_values
        network.role_slices = self.role_slices
        network.nv = self.nv
        network.pos = self.pos
        network.role_kind = self.role_kind
        network.cat = self.cat
        network.lab = self.lab
        network.mod = self.mod
        network.role_index = self.role_index
        network.canbe_array = self.canbe_array
        network.canbe_sets = self.canbe_sets
        # The only genuinely per-sentence state: fresh packed domains
        # and a writable copy of the packed base mask.
        network.bit_layout = self.bit_layout
        network.alive_bits = self.bit_layout.full_words.copy()
        network.matrix_bits = self.base_bits.copy()
        network._bool_mode = False
        network._alive_cache = None
        network._matrix_cache = None
        network.kernel_backend = self.kernel_backend

    # -- shared execute-layer artifacts ------------------------------------

    def vector_masks(self, compiled: CompiledGrammar) -> VectorMasks:
        """Constraint evaluations over this template's field arrays.

        Pure functions of (fields, category table) — i.e. of the
        template — so they are computed once and replayed for every
        sentence of this shape.  The first call per template pays the
        full evaluation cost; this is exactly the work the naive
        per-call parse path repeats for every sentence.
        """
        if self._masks is not None and self._masks_for is compiled:
            return self._masks
        self._compute_masks_full(compiled)
        return self._masks

    def _compute_masks_full(self, compiled: CompiledGrammar) -> None:
        """Evaluate and cache the masks over all O(NV^2) pairs."""
        from repro.constraints.vector import VectorEnv

        unary_env = VectorEnv(x=self._field_arrays(), y=None, canbe=self.canbe_array)
        unary = tuple(_frozen(cc.vector(unary_env)) for cc in compiled.unary)
        binary = self._binary_masks_packed(compiled)
        fused: np.ndarray | None = None
        if binary:
            acc = binary[0].copy()
            for mask in binary[1:]:
                acc &= mask
            fused = _frozen(acc)
        self._masks = VectorMasks(unary=unary, binary=binary, packed=True, fused=fused)
        self._masks_for = compiled

    def _field_arrays(self) -> dict[str, np.ndarray]:
        """The role-value field arrays, keyed as constraint variables."""
        return {
            "pos": self.pos,
            "role": self.role_kind,
            "cat": self.cat,
            "lab": self.lab,
            "mod": self.mod,
        }

    def _binary_masks_packed(self, compiled: CompiledGrammar) -> tuple[np.ndarray, ...]:
        """Symmetrized packed masks of every binary constraint, full eval.

        Shared by :meth:`vector_masks` and by the deferred ``binary``
        of an extended template (:meth:`_extend_masks`), where it runs
        only if a non-fused consumer actually asks for the tuple.
        """
        from repro.constraints.vector import VectorEnv

        fields = self._field_arrays()
        pair_env = VectorEnv(
            x={k: v[:, None] for k, v in fields.items()},
            y={k: v[None, :] for k, v in fields.items()},
            canbe=self.canbe_array,
        )
        binary: list[np.ndarray] = []
        for cc in compiled.binary:
            permitted = cc.vector(pair_env)
            binary.append(_frozen(bitset.pack_rows(permitted & permitted.T, self.bit_layout)))
        return tuple(binary)

    def vector_masks_bool(self, compiled: CompiledGrammar) -> VectorMasks:
        """Boolean expansions of :meth:`vector_masks`, for the byte engine.

        Lazily unpacked from the packed masks (the packed form stays
        the canonical cache entry); only the boolean comparison path
        (``VectorEngine(packed=False)``) ever pays for these.
        """
        if self._masks_bool is not None and self._masks_bool_for is compiled:
            return self._masks_bool
        packed = self.vector_masks(compiled)
        binary = tuple(
            _frozen(bitset.unpack_rows(m, self.bit_layout)) for m in packed.binary
        )
        self._masks_bool = VectorMasks(unary=packed.unary, binary=binary, packed=False)
        self._masks_bool_for = compiled
        return self._masks_bool

    def scratch_matrix(self) -> np.ndarray:
        """A reusable ``(NV, NV)`` bool buffer for consistency sweeps.

        Shared by every network bound from this template; safe because
        sessions (and engines) are single-threaded by contract and the
        buffer never carries state between calls.
        """
        if self._scratch is None:
            self._scratch = np.empty((self.nv, self.nv), dtype=bool)
        return self._scratch

    def scratch_bits(self) -> np.ndarray:
        """A reusable packed ``(NV, n_words)`` buffer for packed sweeps."""
        if self._scratch_bits is None:
            self._scratch_bits = np.empty(
                (self.nv, self.bit_layout.n_words), dtype=bitset.WORD_DTYPE
            )
        return self._scratch_bits

    def nbytes(self) -> int:
        """Approximate resident size, for cache-accounting tests.

        Memoized per lazy-artifact state: sessions report cache bytes on
        every parse/extend, and the arrays counted here are frozen — the
        total only changes when a lazy artifact appears (or deferred
        binary masks materialize), which the state key captures.
        """
        state = (
            self._base_bool is not None,
            self._scratch is not None,
            self._scratch_bits is not None,
            self._masks is not None,
            self._masks is not None and self._masks.binary_materialized,
            self._masks_bool is not None,
        )
        if self._nbytes_cache is not None and self._nbytes_cache[0] == state:
            return self._nbytes_cache[1]
        total = self.base_bits.nbytes + self.canbe_array.nbytes
        total += self.bit_layout.nbytes()
        for arr in (self.pos, self.role_kind, self.cat, self.lab, self.mod, self.role_index):
            total += arr.nbytes
        if self._base_bool is not None:
            total += self._base_bool.nbytes
        if self._scratch is not None:
            total += self._scratch.nbytes
        if self._scratch_bits is not None:
            total += self._scratch_bits.nbytes
        if self._masks is not None:
            total += sum(m.nbytes for m in self._masks.unary)
            if self._masks.binary_materialized:
                # Deferred binary masks of an extended template are not
                # resident (and must not be materialized by accounting).
                total += sum(m.nbytes for m in self._masks.binary)
            if self._masks.fused is not None:
                total += self._masks.fused.nbytes
        if self._masks_bool is not None:
            total += sum(m.nbytes for m in self._masks_bool.binary)
        self._nbytes_cache = (state, total)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkTemplate({self.grammar.name!r}, n={self.n_words}, "
            f"NV={self.nv}, masks={'yes' if self._masks else 'no'})"
        )
