"""A CDG grammar for the context-free language a^n b^n (n >= 1).

Demonstrates one half of the paper's expressivity claim (section 1.5):
CDG covers context-free languages.  The encoding is the *mutual
pointing* idiom: every ``a`` word's governor carries ``MATE-m``,
pointing at a ``b`` to its right; every ``b`` word's needs role carries
``BACK-m``, pointing at an ``a`` to its left; two binary constraints
force the pointers to pair up bijectively, and an ordering constraint
keeps all ``a``s before all ``b``s.  Counting then comes for free: a
bijection between the blocks exists iff they are the same size.

The test suite property-checks acceptance against the obvious oracle
and against the CYK/Earley parsers running the equivalent CFG.
"""

from __future__ import annotations

from functools import lru_cache

from repro.grammar.builder import GrammarBuilder
from repro.grammar.grammar import CDGGrammar


@lru_cache(maxsize=1)
def anbn_grammar() -> CDGGrammar:
    builder = GrammarBuilder("anbn")
    builder.labels("MATE", "BACK", "BLANK")
    builder.roles("governor", "needs")
    builder.categories("a", "b")
    builder.table("governor", "MATE", "BLANK")
    builder.table("needs", "BACK", "BLANK")
    builder.word("a", "a")
    builder.word("b", "b")

    # Every a's governor points MATE at a b to its right.
    builder.constraint(
        "a-governor-mates-right",
        """
        (if (and (eq (cat (word (pos x))) a) (eq (role x) governor))
            (and (eq (lab x) MATE)
                 (gt (mod x) (pos x))
                 (eq (cat (word (mod x))) b)))
        """,
    )
    builder.constraint(
        "a-needs-nothing",
        """
        (if (and (eq (cat (word (pos x))) a) (eq (role x) needs))
            (and (eq (lab x) BLANK) (eq (mod x) nil)))
        """,
    )
    # Every b's needs points BACK at an a to its left.
    builder.constraint(
        "b-needs-back-left",
        """
        (if (and (eq (cat (word (pos x))) b) (eq (role x) needs))
            (and (eq (lab x) BACK)
                 (lt (mod x) (pos x))
                 (eq (cat (word (mod x))) a)))
        """,
    )
    builder.constraint(
        "b-governs-nothing",
        """
        (if (and (eq (cat (word (pos x))) b) (eq (role x) governor))
            (and (eq (lab x) BLANK) (eq (mod x) nil)))
        """,
    )
    # Mutual pointing: MATE and BACK must pair up (forces a bijection).
    builder.constraint(
        "mate-is-acknowledged",
        """
        (if (and (eq (lab x) MATE)
                 (eq (role y) needs)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) BACK) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "back-is-acknowledged",
        """
        (if (and (eq (lab x) BACK)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) MATE) (eq (mod y) (pos x))))
        """,
    )
    # All as precede all bs.
    builder.constraint(
        "as-before-bs",
        """
        (if (and (eq (cat (word (pos x))) a)
                 (eq (cat (word (pos y))) b))
            (lt (pos x) (pos y)))
        """,
    )
    return builder.build()


def anbn_oracle(letters: list[str] | tuple[str, ...]) -> bool:
    """Ground truth: the string is a^n b^n for some n >= 1."""
    n = len(letters)
    if n == 0 or n % 2:
        return False
    half = n // 2
    return all(c == "a" for c in letters[:half]) and all(c == "b" for c in letters[half:])
