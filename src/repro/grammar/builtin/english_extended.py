"""An extended English CDG grammar.

The paper: "we have developed a variety of grammars for English".  This
second, larger grammar extends :mod:`repro.grammar.builtin.english` with

* **pronouns** (*she sees him*) — case-marked: nominative pronouns only
  as subjects, accusative only as objects;
* **proper nouns** (*mary likes john*) — noun phrases without
  determiners;
* **the copula + predicate adjectives** (*the dog is big*) — *is/are*
  acts as the root with a PRED-labelled adjective complement;
* **subject relative clauses** (*the dog that barks runs*) — an embedded
  verb carries RROOT and attaches to the head noun; the relative pronoun
  *that* fills the embedded verb's subject need with RSUBJ.

Scope limits (deliberate, documented): no object relatives, no
auxiliaries/passives, no coordination.  The grammar shares the base
lexicon and adds to it, so every base-grammar sentence should still
parse; ``tests/test_english_extended.py`` checks that plus the new
constructions, including garden paths that must stay rejected.
"""

from __future__ import annotations

from functools import lru_cache

from repro.grammar.builder import GrammarBuilder
from repro.grammar.grammar import CDGGrammar
from repro.grammar.builtin.english import LEXICON as BASE_LEXICON

EXTRA_LEXICON: dict[str, tuple[str, ...]] = {
    # pronouns, case-marked as separate categories
    "she": ("npron",),
    "he": ("npron",),
    "they": ("npron",),
    "i": ("npron",),
    "we": ("npron",),
    "him": ("apron",),
    "her": ("apron",),
    "them": ("apron",),
    "me": ("apron",),
    "us": ("apron",),
    "it": ("npron", "apron"),
    "you": ("npron", "apron"),
    # proper nouns
    "john": ("pnoun",),
    "mary": ("pnoun",),
    "rover": ("pnoun",),
    "purdue": ("pnoun",),
    # copula
    "is": ("cop",),
    "are": ("cop",),
    "was": ("cop",),
    # relative pronoun
    "that": ("relpron",),
}


@lru_cache(maxsize=1)
def english_extended_grammar() -> CDGGrammar:
    builder = GrammarBuilder("english-extended")
    builder.labels(
        "DET", "MOD", "SUBJ", "OBJ", "POBJ", "PP", "ROOT", "VMOD",  # base governor
        "PRED", "RSUBJ", "RROOT",  # new governor labels
        "NP", "S", "PNP", "BLANK",  # needs labels
    )
    builder.roles("governor", "needs")
    builder.categories(
        "det", "adj", "noun", "verb", "prep", "adv",
        "npron", "apron", "pnoun", "cop", "relpron",
    )
    builder.table(
        "governor",
        "DET", "MOD", "SUBJ", "OBJ", "POBJ", "PP", "ROOT", "VMOD", "PRED", "RSUBJ", "RROOT",
    )
    builder.table("needs", "NP", "S", "PNP", "BLANK")

    builder.lexical("governor", "det", "DET")
    builder.lexical("governor", "adj", "MOD", "PRED")
    builder.lexical("governor", "noun", "SUBJ", "OBJ", "POBJ")
    builder.lexical("governor", "pnoun", "SUBJ", "OBJ", "POBJ")
    builder.lexical("governor", "npron", "SUBJ")
    builder.lexical("governor", "apron", "OBJ", "POBJ")
    builder.lexical("governor", "verb", "ROOT", "RROOT")
    builder.lexical("governor", "cop", "ROOT")
    builder.lexical("governor", "prep", "PP")
    builder.lexical("governor", "adv", "VMOD")
    builder.lexical("governor", "relpron", "RSUBJ")
    for cat in ("det", "adj", "adv", "npron", "apron", "relpron"):
        builder.lexical("needs", cat, "BLANK")
    builder.lexical("needs", "noun", "NP", "BLANK")
    builder.lexical("needs", "pnoun", "BLANK")
    builder.lexical("needs", "verb", "S")
    builder.lexical("needs", "cop", "S")
    builder.lexical("needs", "prep", "PNP")

    for word, cats in {**BASE_LEXICON, **EXTRA_LEXICON}.items():
        builder.word(word, *cats)

    # ---- helpers ------------------------------------------------------------
    def is_cat(var: str, *cats: str) -> str:
        tests = " ".join(f"(eq (cat (word (pos {var}))) {cat})" for cat in cats)
        return tests if len(cats) == 1 else f"(or {tests})"

    def mod_cat(var: str, *cats: str) -> str:
        tests = " ".join(f"(eq (cat (word (mod {var}))) {cat})" for cat in cats)
        return tests if len(cats) == 1 else f"(or {tests})"

    # ---- unary constraints ----------------------------------------------------

    builder.constraint(
        "blank-means-no-modifiee",
        """
        (if (eq (lab x) BLANK)
            (eq (mod x) nil))
        """,
    )
    builder.constraint(
        "det-governor",
        f"""
        (if (and {is_cat('x', 'det')} (eq (role x) governor))
            (and (eq (lab x) DET)
                 (gt (mod x) (pos x))
                 {mod_cat('x', 'noun')}))
        """,
    )
    builder.constraint(
        "adj-governor",
        f"""
        (if (and {is_cat('x', 'adj')} (eq (role x) governor))
            (or (and (eq (lab x) MOD)
                     (gt (mod x) (pos x))
                     {mod_cat('x', 'noun')})
                (and (eq (lab x) PRED)
                     (lt (mod x) (pos x))
                     {mod_cat('x', 'cop')})))
        """,
    )
    builder.constraint(
        "nominal-governor",
        f"""
        (if (and {is_cat('x', 'noun', 'pnoun')} (eq (role x) governor))
            (or (and (eq (lab x) SUBJ)
                     (gt (mod x) (pos x))
                     {mod_cat('x', 'verb', 'cop')})
                (and (eq (lab x) OBJ)
                     (lt (mod x) (pos x))
                     {mod_cat('x', 'verb')})
                (and (eq (lab x) POBJ)
                     (lt (mod x) (pos x))
                     {mod_cat('x', 'prep')})))
        """,
    )
    builder.constraint(
        "nominative-pronoun-governor",
        f"""
        (if (and {is_cat('x', 'npron')} (eq (role x) governor))
            (and (eq (lab x) SUBJ)
                 (gt (mod x) (pos x))
                 {mod_cat('x', 'verb', 'cop')}))
        """,
    )
    builder.constraint(
        "accusative-pronoun-governor",
        f"""
        (if (and {is_cat('x', 'apron')} (eq (role x) governor))
            (or (and (eq (lab x) OBJ)
                     (lt (mod x) (pos x))
                     {mod_cat('x', 'verb')})
                (and (eq (lab x) POBJ)
                     (lt (mod x) (pos x))
                     {mod_cat('x', 'prep')})))
        """,
    )
    builder.constraint(
        "noun-needs",
        f"""
        (if (and {is_cat('x', 'noun')} (eq (role x) needs))
            (or (and (eq (lab x) BLANK) (eq (mod x) nil))
                (and (eq (lab x) NP)
                     (lt (mod x) (pos x))
                     {mod_cat('x', 'det')})))
        """,
    )
    builder.constraint(
        "verb-governor",
        f"""
        (if (and {is_cat('x', 'verb')} (eq (role x) governor))
            (or (and (eq (lab x) ROOT) (eq (mod x) nil))
                (and (eq (lab x) RROOT)
                     (lt (mod x) (pos x))
                     {mod_cat('x', 'noun', 'pnoun')})))
        """,
    )
    builder.constraint(
        "verb-needs",
        f"""
        (if (and {is_cat('x', 'verb')} (eq (role x) needs))
            (and (eq (lab x) S)
                 (lt (mod x) (pos x))
                 {mod_cat('x', 'noun', 'pnoun', 'npron', 'relpron')}))
        """,
    )
    builder.constraint(
        "copula-governor",
        f"""
        (if (and {is_cat('x', 'cop')} (eq (role x) governor))
            (and (eq (lab x) ROOT) (eq (mod x) nil)))
        """,
    )
    builder.constraint(
        "copula-needs",
        f"""
        (if (and {is_cat('x', 'cop')} (eq (role x) needs))
            (and (eq (lab x) S)
                 (lt (mod x) (pos x))
                 {mod_cat('x', 'noun', 'pnoun', 'npron')}))
        """,
    )
    builder.constraint(
        "prep-governor",
        f"""
        (if (and {is_cat('x', 'prep')} (eq (role x) governor))
            (and (eq (lab x) PP)
                 (lt (mod x) (pos x))
                 {mod_cat('x', 'verb', 'noun', 'pnoun')}))
        """,
    )
    builder.constraint(
        "prep-needs",
        f"""
        (if (and {is_cat('x', 'prep')} (eq (role x) needs))
            (and (eq (lab x) PNP)
                 (gt (mod x) (pos x))
                 {mod_cat('x', 'noun', 'pnoun', 'apron')}))
        """,
    )
    builder.constraint(
        "adv-governor",
        f"""
        (if (and {is_cat('x', 'adv')} (eq (role x) governor))
            (and (eq (lab x) VMOD)
                 (not (eq (mod x) nil))
                 {mod_cat('x', 'verb')}))
        """,
    )
    builder.constraint(
        "relpron-governor",
        f"""
        (if (and {is_cat('x', 'relpron')} (eq (role x) governor))
            (and (eq (lab x) RSUBJ)
                 (gt (mod x) (pos x))
                 {mod_cat('x', 'verb')}))
        """,
    )

    # ---- binary constraints ----------------------------------------------------

    builder.constraint(
        "subj-modifies-root",
        """
        (if (and (eq (lab x) SUBJ)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (eq (lab y) ROOT))
        """,
    )
    builder.constraint(
        "rsubj-modifies-rroot",
        """
        (if (and (eq (lab x) RSUBJ)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (eq (lab y) RROOT))
        """,
    )
    builder.constraint(
        "obj-modifies-a-verb-root",
        """
        (if (and (eq (lab x) OBJ)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (or (eq (lab y) ROOT) (eq (lab y) RROOT)))
        """,
    )
    builder.constraint(
        "s-need-filled-by-a-subject",
        """
        (if (and (eq (lab x) S)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (and (or (eq (lab y) SUBJ) (eq (lab y) RSUBJ))
                 (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "subj-fills-s-need",
        """
        (if (and (or (eq (lab x) SUBJ) (eq (lab x) RSUBJ))
                 (eq (role y) needs)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) S) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "det-fills-np-need",
        """
        (if (and (eq (lab x) DET)
                 (eq (role y) needs)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) NP) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "np-need-filled-by-det",
        """
        (if (and (eq (lab x) NP)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) DET) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "pnp-need-filled-by-pobj",
        """
        (if (and (eq (lab x) PNP)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) POBJ) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "pobj-fills-pnp-need",
        """
        (if (and (eq (lab x) POBJ)
                 (eq (role y) needs)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) PNP) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "single-root",
        """
        (if (and (eq (lab x) ROOT) (eq (lab y) ROOT))
            (eq (pos x) (pos y)))
        """,
    )
    builder.constraint(
        "object-unique",
        """
        (if (and (eq (lab x) OBJ) (eq (lab y) OBJ))
            (or (eq (pos x) (pos y))
                (not (eq (mod x) (mod y)))))
        """,
    )
    builder.constraint(
        "pred-unique",
        """
        (if (and (eq (lab x) PRED) (eq (lab y) PRED))
            (or (eq (pos x) (pos y))
                (not (eq (mod x) (mod y)))))
        """,
    )
    builder.constraint(
        "rroot-unique-per-noun",
        """
        (if (and (eq (lab x) RROOT) (eq (lab y) RROOT))
            (or (eq (pos x) (pos y))
                (not (eq (mod x) (mod y)))))
        """,
    )
    builder.constraint(
        "det-precedes-adjectives",
        """
        (if (and (eq (lab x) DET)
                 (eq (lab y) MOD)
                 (eq (mod x) (mod y)))
            (lt (pos x) (pos y)))
        """,
    )
    builder.constraint(
        "vmod-modifies-a-root",
        """
        (if (and (eq (lab x) VMOD)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (or (eq (lab y) ROOT) (eq (lab y) RROOT)))
        """,
    )
    builder.constraint(
        "pp-attaches-to-verb-or-nominal",
        """
        (if (and (eq (lab x) PP)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (or (eq (lab y) ROOT)
                (eq (lab y) RROOT)
                (eq (lab y) SUBJ)
                (eq (lab y) OBJ)
                (eq (lab y) POBJ)))
        """,
    )
    # The relative pronoun sits between the head noun and the embedded verb.
    builder.constraint(
        "relative-clause-contiguity",
        """
        (if (and (eq (lab x) RROOT)
                 (eq (lab y) RSUBJ)
                 (eq (mod y) (pos x)))
            (and (gt (pos y) (mod x))
                 (lt (pos y) (pos x))))
        """,
    )
    # The relative clause span (head noun .. embedded verb) must not
    # contain the main verb — the projectivity that rules out reading
    # "the dog that barks runs" with *barks* as the main verb and a
    # trailing relative "that runs".  (The language has no arithmetic, so
    # adjacency is enforced through span non-crossing, the same idiom the
    # Dyck grammar uses.)
    builder.constraint(
        "relative-clause-does-not-cross-root",
        """
        (if (and (eq (lab x) RROOT)
                 (eq (lab y) ROOT))
            (or (lt (pos y) (mod x))
                (gt (pos y) (pos x))))
        """,
    )
    return builder.build()
