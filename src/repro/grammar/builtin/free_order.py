"""A case-marked free-word-order grammar.

Paper section 1.5: "In CDG parsing, if a constraint applies to a word,
it does not matter where in the sentence the word is (unless the
constraint needs to relate the order of two words) ... there is no
notion of left-to-right parsing", which the authors argue suits spoken
language with "repeated and aborted phrases".

This grammar makes the claim concrete with a miniature case-marking
language (Latin-style): nominative and accusative nouns plus a
transitive verb, with **no ordering constraints at all** — grammatical
function comes from case morphology, so every permutation of a valid
clause parses, and always to the same dependency structure.  The tests
verify exactly that: all 6 orders of subject/verb/object accepted with
identical heads, and case violations rejected in every order.

Lexicon (word-final -a = nominative, -am = accusative, mirroring the
first declension): puella/puellam (girl), agricola/agricolam (farmer),
stella/stellam (star); verbs amat (loves), videt (sees).
"""

from __future__ import annotations

from functools import lru_cache

from repro.grammar.builder import GrammarBuilder
from repro.grammar.grammar import CDGGrammar

NOUNS = ("puella", "agricola", "stella")
VERBS = ("amat", "videt")


@lru_cache(maxsize=1)
def free_order_grammar() -> CDGGrammar:
    builder = GrammarBuilder("free-order")
    builder.labels("SUBJ", "OBJ", "ROOT", "S", "O", "BLANK")
    builder.roles("governor", "needs")
    builder.categories("nom", "acc", "verb")
    builder.table("governor", "SUBJ", "OBJ", "ROOT")
    builder.table("needs", "S", "O", "BLANK")
    for stem in NOUNS:
        builder.word(stem, "nom")
        builder.word(stem + "m", "acc")
    for verb in VERBS:
        builder.word(verb, "verb")

    # Case determines function; note: NO position comparisons anywhere.
    builder.constraint(
        "nominative-is-subject",
        """
        (if (and (eq (cat (word (pos x))) nom) (eq (role x) governor))
            (and (eq (lab x) SUBJ)
                 (not (eq (mod x) nil))
                 (eq (cat (word (mod x))) verb)))
        """,
    )
    builder.constraint(
        "accusative-is-object",
        """
        (if (and (eq (cat (word (pos x))) acc) (eq (role x) governor))
            (and (eq (lab x) OBJ)
                 (not (eq (mod x) nil))
                 (eq (cat (word (mod x))) verb)))
        """,
    )
    builder.constraint(
        "nouns-need-nothing",
        """
        (if (and (or (eq (cat (word (pos x))) nom)
                     (eq (cat (word (pos x))) acc))
                 (eq (role x) needs))
            (and (eq (lab x) BLANK) (eq (mod x) nil)))
        """,
    )
    builder.constraint(
        "verb-is-root",
        """
        (if (and (eq (cat (word (pos x))) verb) (eq (role x) governor))
            (and (eq (lab x) ROOT) (eq (mod x) nil)))
        """,
    )
    # The verb needs a subject (via its needs role) and exactly one
    # object (via the uniqueness constraint below) — in any direction.
    builder.constraint(
        "verb-needs-subject",
        """
        (if (and (eq (cat (word (pos x))) verb) (eq (role x) needs))
            (and (eq (lab x) S)
                 (not (eq (mod x) nil))
                 (eq (cat (word (mod x))) nom)))
        """,
    )
    builder.constraint(
        "s-need-filled-by-subj",
        """
        (if (and (eq (lab x) S)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) SUBJ) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "subj-fills-s-need",
        """
        (if (and (eq (lab x) SUBJ)
                 (eq (role y) needs)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) S) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "object-unique",
        """
        (if (and (eq (lab x) OBJ) (eq (lab y) OBJ))
            (or (eq (pos x) (pos y))
                (not (eq (mod x) (mod y)))))
        """,
    )
    builder.constraint(
        "single-root",
        """
        (if (and (eq (lab x) ROOT) (eq (lab y) ROOT))
            (eq (pos x) (pos y)))
        """,
    )
    return builder.build()
