"""A CDG grammar for the copy language ww — beyond context-free power.

The paper (section 1.5): "CDG can accept languages that CFGs cannot,
for example, ww (where w is some string of terminal symbols)."  This
module makes that claim concrete with w over {a, b}, w non-empty.

Encoding.  Every word is either a *left* word (governor ``MATE-m``
pointing at its copy to the right, needs ``FREE-nil``) or a *right*
word (needs ``BACK-m`` pointing at its original to the left, governor
``IDLE-nil``) — never both, never neither.  Binary constraints force:

* mutual pointing (MATE/BACK pair up bijectively),
* equal letters between partners (``(eq (cat (word (mod x))) (cat (word
  (pos x))))``),
* every left word before every right word (the halves are blocks),
* monotone matching (no crossings).

A prefix block mapped bijectively, monotonically and letter-preservingly
onto the suffix block is exactly "the second half repeats the first", so
the accepted language is ww.  Property tests check acceptance against
the string oracle, and check that the context-free *palindrome* grammar
(w w^R — which CFGs do accept) disagrees with ww exactly where it should.
"""

from __future__ import annotations

from functools import lru_cache

from repro.grammar.builder import GrammarBuilder
from repro.grammar.grammar import CDGGrammar


@lru_cache(maxsize=1)
def copy_language_grammar() -> CDGGrammar:
    builder = GrammarBuilder("copy-language")
    builder.labels("MATE", "IDLE", "BACK", "FREE")
    builder.roles("governor", "needs")
    builder.categories("a", "b")
    builder.table("governor", "MATE", "IDLE")
    builder.table("needs", "BACK", "FREE")
    builder.word("a", "a")
    builder.word("b", "b")

    # Governor: MATE points right at the same letter, or IDLE-nil.
    builder.constraint(
        "governor-shape",
        """
        (if (eq (role x) governor)
            (or (and (eq (lab x) MATE)
                     (gt (mod x) (pos x))
                     (eq (cat (word (mod x))) (cat (word (pos x)))))
                (and (eq (lab x) IDLE) (eq (mod x) nil))))
        """,
    )
    # Needs: BACK points left at the same letter, or FREE-nil.
    builder.constraint(
        "needs-shape",
        """
        (if (eq (role x) needs)
            (or (and (eq (lab x) BACK)
                     (lt (mod x) (pos x))
                     (eq (cat (word (mod x))) (cat (word (pos x)))))
                (and (eq (lab x) FREE) (eq (mod x) nil))))
        """,
    )
    # A word is left xor right: MATE excludes BACK on the same word ...
    builder.constraint(
        "not-both-halves",
        """
        (if (and (eq (lab x) MATE) (eq (lab y) BACK))
            (not (eq (pos x) (pos y))))
        """,
    )
    # ... and IDLE excludes FREE (no unmatched word).
    builder.constraint(
        "no-unmatched-word",
        """
        (if (and (eq (lab x) IDLE) (eq (lab y) FREE))
            (not (eq (pos x) (pos y))))
        """,
    )
    # Mutual pointing.
    builder.constraint(
        "mate-acknowledged",
        """
        (if (and (eq (lab x) MATE)
                 (eq (role y) needs)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) BACK) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "back-acknowledged",
        """
        (if (and (eq (lab x) BACK)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) MATE) (eq (mod y) (pos x))))
        """,
    )
    # Halves are contiguous blocks: lefts strictly precede rights.
    builder.constraint(
        "left-block-before-right-block",
        """
        (if (and (eq (lab x) MATE) (eq (lab y) BACK))
            (lt (pos x) (pos y)))
        """,
    )
    # The matching preserves order (no crossings).
    builder.constraint(
        "matching-is-monotone",
        """
        (if (and (eq (lab x) MATE)
                 (eq (lab y) MATE)
                 (lt (pos x) (pos y)))
            (lt (mod x) (mod y)))
        """,
    )
    return builder.build()


def copy_oracle(letters: list[str] | tuple[str, ...]) -> bool:
    """Ground truth: the string is w w for some non-empty w."""
    n = len(letters)
    if n == 0 or n % 2:
        return False
    half = n // 2
    return tuple(letters[:half]) == tuple(letters[half:])
