"""Built-in grammars: the paper's toy example, a broader English grammar,
and the expressivity demonstrations (a^n b^n and the non-context-free ww)."""

from repro.grammar.builtin.abcd import abcd_grammar, abcd_oracle
from repro.grammar.builtin.anbn import anbn_grammar, anbn_oracle
from repro.grammar.builtin.copy_language import copy_language_grammar, copy_oracle
from repro.grammar.builtin.dyck import dyck_grammar, dyck_oracle
from repro.grammar.builtin.english import english_grammar
from repro.grammar.builtin.english_extended import english_extended_grammar
from repro.grammar.builtin.free_order import free_order_grammar
from repro.grammar.builtin.program import program_grammar

__all__ = [
    "program_grammar",
    "english_grammar",
    "english_extended_grammar",
    "anbn_grammar",
    "anbn_oracle",
    "copy_language_grammar",
    "copy_oracle",
    "dyck_grammar",
    "dyck_oracle",
    "abcd_grammar",
    "abcd_oracle",
    "free_order_grammar",
]
