"""A three-role CDG grammar for a^n b^n c^n d^n.

The paper notes "at least two roles per word are required to parse a
sentence, though more can be used as needed".  This grammar actually
needs three: every ``a`` word simultaneously points at its ``b`` (from
the governor role), its ``c`` (from the needs role) **and** its ``d``
(from a third role, ``extra``), with mutual-pointing constraints making
each of the three matchings a bijection.  Block ordering then yields
exactly a^n b^n c^n d^n — a language requiring three simultaneous
counts, well beyond context-free.

Besides the formal-language point, the grammar exercises every engine
and the MasPar PE layout at q = 3 (virtual PEs = q^2 n^4 = 9 n^4),
where the paper only ever uses q = 2.
"""

from __future__ import annotations

from functools import lru_cache

from repro.grammar.builder import GrammarBuilder
from repro.grammar.grammar import CDGGrammar

_BACK_ROLE = {"MB": "needs", "MC": "needs", "MD": "needs"}


@lru_cache(maxsize=1)
def abcd_grammar() -> CDGGrammar:
    builder = GrammarBuilder("abcd")
    builder.labels("MB", "MC", "MD", "BB", "BC", "BD", "BLANK")
    builder.roles("governor", "needs", "extra")
    builder.categories("a", "b", "c", "d")
    builder.table("governor", "MB", "BLANK")
    builder.table("needs", "MC", "BB", "BC", "BD", "BLANK")
    builder.table("extra", "MD", "BLANK")
    for letter in "abcd":
        builder.word(letter, letter)

    # -- the a words: three outgoing pointers --------------------------------
    for role, label, target in (
        ("governor", "MB", "b"),
        ("needs", "MC", "c"),
        ("extra", "MD", "d"),
    ):
        builder.constraint(
            f"a-{role}-points-at-{target}",
            f"""
            (if (and (eq (cat (word (pos x))) a) (eq (role x) {role}))
                (and (eq (lab x) {label})
                     (gt (mod x) (pos x))
                     (eq (cat (word (mod x))) {target})))
            """,
        )

    # -- the b/c/d words: one back pointer (in needs), others blank ----------
    for letter, back in (("b", "BB"), ("c", "BC"), ("d", "BD")):
        builder.constraint(
            f"{letter}-needs-points-back",
            f"""
            (if (and (eq (cat (word (pos x))) {letter}) (eq (role x) needs))
                (and (eq (lab x) {back})
                     (lt (mod x) (pos x))
                     (eq (cat (word (mod x))) a)))
            """,
        )
        for role in ("governor", "extra"):
            builder.constraint(
                f"{letter}-{role}-blank",
                f"""
                (if (and (eq (cat (word (pos x))) {letter}) (eq (role x) {role}))
                    (and (eq (lab x) BLANK) (eq (mod x) nil)))
                """,
            )

    # -- mutual pointing: each matching is a bijection ------------------------
    for forward, back, forward_role in (
        ("MB", "BB", "governor"),
        ("MC", "BC", "needs"),
        ("MD", "BD", "extra"),
    ):
        builder.constraint(
            f"{forward}-acknowledged",
            f"""
            (if (and (eq (lab x) {forward})
                     (eq (role y) needs)
                     (eq (pos y) (mod x)))
                (and (eq (lab y) {back}) (eq (mod y) (pos x))))
            """,
        )
        builder.constraint(
            f"{back}-acknowledged",
            f"""
            (if (and (eq (lab x) {back})
                     (eq (role y) {forward_role})
                     (eq (pos y) (mod x)))
                (and (eq (lab y) {forward}) (eq (mod y) (pos x))))
            """,
        )

    # -- block ordering: a+ b+ c+ d+ -------------------------------------------
    for left, right in (("a", "b"), ("b", "c"), ("c", "d")):
        builder.constraint(
            f"{left}s-before-{right}s",
            f"""
            (if (and (eq (cat (word (pos x))) {left})
                     (eq (cat (word (pos y))) {right}))
                (lt (pos x) (pos y)))
            """,
        )
    return builder.build()


def abcd_oracle(letters: list[str] | tuple[str, ...]) -> bool:
    """Ground truth: the string is a^n b^n c^n d^n for some n >= 1."""
    n = len(letters)
    if n == 0 or n % 4:
        return False
    quarter = n // 4
    expected = ["a"] * quarter + ["b"] * quarter + ["c"] * quarter + ["d"] * quarter
    return list(letters) == expected
