"""The paper's worked example grammar for "The program runs" (section 1).

Labels, roles, table T, lexicon and all ten constraints are transcribed
verbatim from the paper, so the constraint-network states after each
propagation step can be asserted against Figures 1-7 exactly
(``tests/test_paper_figures.py``).
"""

from __future__ import annotations

from functools import lru_cache

from repro.grammar.builder import GrammarBuilder
from repro.grammar.grammar import CDGGrammar


@lru_cache(maxsize=1)
def program_grammar() -> CDGGrammar:
    """Build the "The program runs" grammar from the paper."""
    builder = GrammarBuilder("program")
    builder.labels("SUBJ", "ROOT", "DET", "NP", "S", "BLANK")
    builder.roles("governor", "needs")
    builder.categories("det", "noun", "verb")
    builder.table("governor", "SUBJ", "ROOT", "DET")
    builder.table("needs", "NP", "S", "BLANK")
    builder.words(
        {
            "the": "det",
            "a": "det",
            "program": "noun",
            "runs": "verb",
        }
    )

    # -- unary constraints (paper section 1.3) -----------------------------

    builder.constraint(
        "verbs-are-ungoverned-roots",
        """
        (if (and (eq (cat (word (pos x))) verb)
                 (eq (role x) governor))
            (and (eq (lab x) ROOT)
                 (eq (mod x) nil)))
        """,
    )
    builder.constraint(
        "verbs-need-s",
        """
        (if (and (eq (cat (word (pos x))) verb)
                 (eq (role x) needs))
            (and (eq (lab x) S)
                 (not (eq (mod x) nil))))
        """,
    )
    builder.constraint(
        "nouns-are-subjects",
        """
        (if (and (eq (cat (word (pos x))) noun)
                 (eq (role x) governor))
            (and (eq (lab x) SUBJ)
                 (not (eq (mod x) nil))))
        """,
    )
    builder.constraint(
        "nouns-need-np",
        """
        (if (and (eq (cat (word (pos x))) noun)
                 (eq (role x) needs))
            (and (eq (lab x) NP)
                 (not (eq (mod x) nil))))
        """,
    )
    builder.constraint(
        "dets-are-determiners",
        """
        (if (and (eq (cat (word (pos x))) det)
                 (eq (role x) governor))
            (and (eq (lab x) DET)
                 (not (eq (mod x) nil))))
        """,
    )
    builder.constraint(
        "dets-need-nothing",
        """
        (if (and (eq (cat (word (pos x))) det)
                 (eq (role x) needs))
            (and (eq (lab x) BLANK)
                 (eq (mod x) nil)))
        """,
    )

    # -- binary constraints (paper section 1.3) ----------------------------

    builder.constraint(
        "subj-governed-by-root-to-right",
        """
        (if (and (eq (lab x) SUBJ)
                 (eq (lab y) ROOT))
            (and (eq (mod x) (pos y))
                 (lt (pos x) (pos y))))
        """,
    )
    builder.constraint(
        "s-needs-subj-to-left",
        """
        (if (and (eq (lab x) S)
                 (eq (lab y) SUBJ))
            (and (eq (mod x) (pos y))
                 (gt (pos x) (pos y))))
        """,
    )
    builder.constraint(
        "det-governed-by-noun-to-right",
        """
        (if (and (eq (lab x) DET)
                 (eq (cat (word (pos y))) noun))
            (and (eq (mod x) (pos y))
                 (lt (pos x) (pos y))))
        """,
    )
    builder.constraint(
        "np-needs-det-to-left",
        """
        (if (and (eq (lab x) NP)
                 (eq (lab y) DET))
            (and (eq (mod x) (pos y))
                 (gt (pos x) (pos y))))
        """,
    )
    return builder.build()
