"""A CDG grammar for two-flavour balanced brackets (the Dyck language D2).

Completes the expressivity picture alongside :mod:`anbn` (counting) and
:mod:`copy_language` (cross-serial/monotone matching): bracket balance
needs *nested* matching, and CDG expresses it with the same mutual
pointing idiom plus one non-crossing constraint —

    if an opener y starts inside the span of an opener x,
    it must also close inside it:
    pos(x) < pos(y) < mod(x)  =>  mod(y) < mod(x)

— so "([)]" is rejected while "([])" parses.  Each opener must MATE a
closer of its own flavour ("(" with ")", "[" with "]").

Property-tested against the stack-scan oracle and against CYK/Earley on
the equivalent CFG (D2 is context-free, so here the formalisms must
agree — the interesting contrast is with ww, where they cannot).
"""

from __future__ import annotations

from functools import lru_cache

from repro.grammar.builder import GrammarBuilder
from repro.grammar.grammar import CDGGrammar

#: opener -> matching closer.
PAIRS = {"(": ")", "[": "]"}


@lru_cache(maxsize=1)
def dyck_grammar() -> CDGGrammar:
    builder = GrammarBuilder("dyck")
    builder.labels("MATE", "IDLE", "BACK", "FREE")
    builder.roles("governor", "needs")
    builder.categories("oparen", "cparen", "obrack", "cbrack")
    builder.table("governor", "MATE", "IDLE")
    builder.table("needs", "BACK", "FREE")
    builder.word("(", "oparen")
    builder.word(")", "cparen")
    builder.word("[", "obrack")
    builder.word("]", "cbrack")

    # Openers MATE a closer of their own flavour, to the right.
    for opener, closer in (("oparen", "cparen"), ("obrack", "cbrack")):
        builder.constraint(
            f"{opener}-governor",
            f"""
            (if (and (eq (cat (word (pos x))) {opener}) (eq (role x) governor))
                (and (eq (lab x) MATE)
                     (gt (mod x) (pos x))
                     (eq (cat (word (mod x))) {closer})))
            """,
        )
        builder.constraint(
            f"{closer}-needs",
            f"""
            (if (and (eq (cat (word (pos x))) {closer}) (eq (role x) needs))
                (and (eq (lab x) BACK)
                     (lt (mod x) (pos x))
                     (eq (cat (word (mod x))) {opener})))
            """,
        )
    builder.constraint(
        "openers-need-nothing",
        """
        (if (and (or (eq (cat (word (pos x))) oparen)
                     (eq (cat (word (pos x))) obrack))
                 (eq (role x) needs))
            (and (eq (lab x) FREE) (eq (mod x) nil)))
        """,
    )
    builder.constraint(
        "closers-govern-nothing",
        """
        (if (and (or (eq (cat (word (pos x))) cparen)
                     (eq (cat (word (pos x))) cbrack))
                 (eq (role x) governor))
            (and (eq (lab x) IDLE) (eq (mod x) nil)))
        """,
    )
    # Mutual pointing: the matching is a bijection.
    builder.constraint(
        "mate-acknowledged",
        """
        (if (and (eq (lab x) MATE)
                 (eq (role y) needs)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) BACK) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "back-acknowledged",
        """
        (if (and (eq (lab x) BACK)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) MATE) (eq (mod y) (pos x))))
        """,
    )
    # Proper nesting: spans never cross.
    builder.constraint(
        "no-crossing",
        """
        (if (and (eq (lab x) MATE)
                 (eq (lab y) MATE)
                 (lt (pos x) (pos y))
                 (lt (pos y) (mod x)))
            (lt (mod y) (mod x)))
        """,
    )
    return builder.build()


def dyck_oracle(tokens: list[str] | tuple[str, ...]) -> bool:
    """Stack-scan ground truth (non-empty balanced two-flavour strings)."""
    if not tokens:
        return False
    stack: list[str] = []
    for token in tokens:
        if token in PAIRS:
            stack.append(PAIRS[token])
        elif not stack or stack.pop() != token:
            return False
    return not stack
