"""A broader English CDG grammar.

The paper's evaluation uses the authors' (unpublished) English grammars
and reports that "the average length of an English sentence is on the
order of 10 words"; this grammar plays that role here.  It keeps the
paper's structure — two roles (governor / needs), unary + binary
constraints, a label table T — and covers determiners, adjectives,
nouns, verbs (single main verb), prepositional phrases and adverbs,
including lexically ambiguous words (*saw*, *duck*, *flies*, *program*).

Design idioms (all expressible in the paper's constraint language):

* **Direction** is enforced in unary constraints by comparing ``(mod x)``
  with ``(pos x)`` (e.g. a determiner precedes the noun it modifies).
* **Category of the modifiee** is checked with ``(cat (word (mod x)))``
  under can-be semantics, so it prunes early without committing a
  lexically ambiguous modifiee.
* **Mutual pointing** links a governor label to the needs role of the
  word it modifies (DET <-> NP, SUBJ <-> S, POBJ <-> PNP); this both
  encodes subcategorization ("a singular count noun always needs a
  determiner" generalised) and makes fillers unique.

Known scope limits (documented, deliberate): one main verb per sentence
(no subordinate clauses), no coordination, no auxiliaries.
"""

from __future__ import annotations

from functools import lru_cache

from repro.grammar.builder import GrammarBuilder
from repro.grammar.grammar import CDGGrammar

#: Lexicon entries: word -> categories.
LEXICON: dict[str, tuple[str, ...]] = {
    # determiners
    "the": ("det",),
    "a": ("det",),
    "an": ("det",),
    "every": ("det",),
    "some": ("det",),
    "this": ("det",),
    # adjectives
    "big": ("adj",),
    "red": ("adj",),
    "old": ("adj",),
    "small": ("adj",),
    "happy": ("adj",),
    "quick": ("adj",),
    "lazy": ("adj",),
    # nouns
    "dog": ("noun",),
    "dogs": ("noun",),
    "cat": ("noun",),
    "cats": ("noun",),
    "man": ("noun",),
    "woman": ("noun",),
    "bird": ("noun",),
    "tree": ("noun",),
    "park": ("noun",),
    "house": ("noun",),
    "telescope": ("noun",),
    "computer": ("noun",),
    "student": ("noun",),
    "sentence": ("noun",),
    # verbs
    "runs": ("verb",),
    "barks": ("verb",),
    "bark": ("verb",),
    "sees": ("verb",),
    "likes": ("verb",),
    "walks": ("verb",),
    "eats": ("verb",),
    "sleeps": ("verb",),
    "chases": ("verb",),
    "chase": ("verb",),
    "parses": ("verb",),
    # lexically ambiguous
    "saw": ("noun", "verb"),
    "duck": ("noun", "verb"),
    "flies": ("noun", "verb"),
    "program": ("noun", "verb"),
    # prepositions
    "in": ("prep",),
    "on": ("prep",),
    "with": ("prep",),
    "under": ("prep",),
    "near": ("prep",),
    # adverbs
    "quickly": ("adv",),
    "slowly": ("adv",),
    "often": ("adv",),
    "today": ("adv",),
    "loudly": ("adv",),
}


@lru_cache(maxsize=1)
def english_grammar() -> CDGGrammar:
    """Build the English grammar."""
    builder = GrammarBuilder("english")
    builder.labels(
        "DET", "MOD", "SUBJ", "OBJ", "POBJ", "PP", "ROOT", "VMOD",  # governor
        "NP", "S", "PNP", "BLANK",  # needs
    )
    builder.roles("governor", "needs")
    builder.categories("det", "adj", "noun", "verb", "prep", "adv")
    builder.table("governor", "DET", "MOD", "SUBJ", "OBJ", "POBJ", "PP", "ROOT", "VMOD")
    builder.table("needs", "NP", "S", "PNP", "BLANK")

    # The lexical table (paper footnote 1) prunes label choices by word
    # category before any constraint runs.
    builder.lexical("governor", "det", "DET")
    builder.lexical("governor", "adj", "MOD")
    builder.lexical("governor", "noun", "SUBJ", "OBJ", "POBJ")
    builder.lexical("governor", "verb", "ROOT")
    builder.lexical("governor", "prep", "PP")
    builder.lexical("governor", "adv", "VMOD")
    builder.lexical("needs", "det", "BLANK")
    builder.lexical("needs", "adj", "BLANK")
    builder.lexical("needs", "noun", "NP", "BLANK")
    builder.lexical("needs", "verb", "S")
    builder.lexical("needs", "prep", "PNP")
    builder.lexical("needs", "adv", "BLANK")

    for word, cats in LEXICON.items():
        builder.word(word, *cats)

    # ---- unary constraints -------------------------------------------------

    builder.constraint(
        "det-governor",
        """
        (if (and (eq (cat (word (pos x))) det) (eq (role x) governor))
            (and (eq (lab x) DET)
                 (gt (mod x) (pos x))
                 (eq (cat (word (mod x))) noun)))
        """,
    )
    builder.constraint(
        "det-needs",
        """
        (if (and (eq (cat (word (pos x))) det) (eq (role x) needs))
            (and (eq (lab x) BLANK) (eq (mod x) nil)))
        """,
    )
    builder.constraint(
        "adj-governor",
        """
        (if (and (eq (cat (word (pos x))) adj) (eq (role x) governor))
            (and (eq (lab x) MOD)
                 (gt (mod x) (pos x))
                 (eq (cat (word (mod x))) noun)))
        """,
    )
    builder.constraint(
        "adj-needs",
        """
        (if (and (eq (cat (word (pos x))) adj) (eq (role x) needs))
            (and (eq (lab x) BLANK) (eq (mod x) nil)))
        """,
    )
    builder.constraint(
        "noun-governor",
        """
        (if (and (eq (cat (word (pos x))) noun) (eq (role x) governor))
            (or (and (eq (lab x) SUBJ)
                     (gt (mod x) (pos x))
                     (eq (cat (word (mod x))) verb))
                (and (eq (lab x) OBJ)
                     (lt (mod x) (pos x))
                     (eq (cat (word (mod x))) verb))
                (and (eq (lab x) POBJ)
                     (lt (mod x) (pos x))
                     (eq (cat (word (mod x))) prep))))
        """,
    )
    builder.constraint(
        "noun-needs",
        """
        (if (and (eq (cat (word (pos x))) noun) (eq (role x) needs))
            (or (and (eq (lab x) BLANK) (eq (mod x) nil))
                (and (eq (lab x) NP)
                     (lt (mod x) (pos x))
                     (eq (cat (word (mod x))) det))))
        """,
    )
    builder.constraint(
        "verb-governor",
        """
        (if (and (eq (cat (word (pos x))) verb) (eq (role x) governor))
            (and (eq (lab x) ROOT) (eq (mod x) nil)))
        """,
    )
    builder.constraint(
        "verb-needs",
        """
        (if (and (eq (cat (word (pos x))) verb) (eq (role x) needs))
            (and (eq (lab x) S)
                 (lt (mod x) (pos x))
                 (eq (cat (word (mod x))) noun)))
        """,
    )
    builder.constraint(
        "prep-governor",
        """
        (if (and (eq (cat (word (pos x))) prep) (eq (role x) governor))
            (and (eq (lab x) PP)
                 (lt (mod x) (pos x))
                 (or (eq (cat (word (mod x))) verb)
                     (eq (cat (word (mod x))) noun))))
        """,
    )
    builder.constraint(
        "prep-needs",
        """
        (if (and (eq (cat (word (pos x))) prep) (eq (role x) needs))
            (and (eq (lab x) PNP)
                 (gt (mod x) (pos x))
                 (eq (cat (word (mod x))) noun)))
        """,
    )
    builder.constraint(
        "adv-governor",
        """
        (if (and (eq (cat (word (pos x))) adv) (eq (role x) governor))
            (and (eq (lab x) VMOD)
                 (not (eq (mod x) nil))
                 (eq (cat (word (mod x))) verb)))
        """,
    )
    builder.constraint(
        "adv-needs",
        """
        (if (and (eq (cat (word (pos x))) adv) (eq (role x) needs))
            (and (eq (lab x) BLANK) (eq (mod x) nil)))
        """,
    )

    # ---- binary constraints -----------------------------------------------

    builder.constraint(
        "subj-modifies-root",
        """
        (if (and (eq (lab x) SUBJ)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (eq (lab y) ROOT))
        """,
    )
    builder.constraint(
        "obj-modifies-root",
        """
        (if (and (eq (lab x) OBJ)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (eq (lab y) ROOT))
        """,
    )
    builder.constraint(
        "s-need-filled-by-subj",
        """
        (if (and (eq (lab x) S)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) SUBJ) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "subj-fills-s-need",
        """
        (if (and (eq (lab x) SUBJ)
                 (eq (role y) needs)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) S) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "det-fills-np-need",
        """
        (if (and (eq (lab x) DET)
                 (eq (role y) needs)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) NP) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "np-need-filled-by-det",
        """
        (if (and (eq (lab x) NP)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) DET) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "pnp-need-filled-by-pobj",
        """
        (if (and (eq (lab x) PNP)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) POBJ) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "pobj-fills-pnp-need",
        """
        (if (and (eq (lab x) POBJ)
                 (eq (role y) needs)
                 (eq (pos y) (mod x)))
            (and (eq (lab y) PNP) (eq (mod y) (pos x))))
        """,
    )
    builder.constraint(
        "single-root",
        """
        (if (and (eq (lab x) ROOT) (eq (lab y) ROOT))
            (eq (pos x) (pos y)))
        """,
    )
    builder.constraint(
        "object-unique",
        """
        (if (and (eq (lab x) OBJ) (eq (lab y) OBJ))
            (or (eq (pos x) (pos y))
                (not (eq (mod x) (mod y)))))
        """,
    )
    builder.constraint(
        "det-precedes-adjectives",
        """
        (if (and (eq (lab x) DET)
                 (eq (lab y) MOD)
                 (eq (mod x) (mod y)))
            (lt (pos x) (pos y)))
        """,
    )
    builder.constraint(
        "vmod-modifies-root",
        """
        (if (and (eq (lab x) VMOD)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (eq (lab y) ROOT))
        """,
    )
    builder.constraint(
        "pp-attaches-to-verb-or-noun",
        """
        (if (and (eq (lab x) PP)
                 (eq (role y) governor)
                 (eq (pos y) (mod x)))
            (or (eq (lab y) ROOT)
                (eq (lab y) SUBJ)
                (eq (lab y) OBJ)
                (eq (lab y) POBJ)))
        """,
    )
    return builder.build()
