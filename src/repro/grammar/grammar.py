"""The CDG grammar 5-tuple (paper section 1.1).

A grammar is ``<Sigma, L(abels), R(oles), T(able), C(onstraints)>`` plus a
lexicon mapping surface words to elements of Sigma.  ``T`` restricts which
labels may appear in which role ("though T is not a necessary component
of the grammar, it does make the analysis of a sentence more efficient");
we additionally support the footnote's refinement — restricting labels by
word category — through the optional *lexical table*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GrammarError
from repro.constraints import Constraint, SymbolTable
from repro.grammar.lexicon import Lexicon


@dataclass(frozen=True)
class Sentence:
    """A tokenized input sentence with resolved category sets.

    Positions are 1-based throughout, as in the paper ("program ...
    modifies runs, the third word in the sentence"); index 0 is reserved
    for the ``nil`` modifiee.

    Attributes:
        words: surface tokens, in order.
        category_sets: ``category_sets[i]`` is the frozenset of category
            codes word ``i + 1`` may have.
    """

    words: tuple[str, ...]
    category_sets: tuple[frozenset[int], ...]

    def __len__(self) -> int:
        return len(self.words)

    def canbe_array(self, n_categories: int) -> np.ndarray:
        """Bool array of shape ``(n + 1, n_categories)``; row 0 all-False."""
        table = np.zeros((len(self.words) + 1, n_categories), dtype=bool)
        for position, cats in enumerate(self.category_sets, start=1):
            for code in cats:
                table[position, code] = True
        return table

    def canbe_sets(self) -> tuple[frozenset[int], ...]:
        """Category sets indexed by position, with ``[0]`` empty (nil)."""
        return (frozenset(),) + self.category_sets


class CDGGrammar:
    """An immutable-after-validation CDG grammar.

    Build one with :class:`repro.grammar.builder.GrammarBuilder` or load it
    from text with :func:`repro.grammar.loader.load_grammar`.
    """

    def __init__(
        self,
        name: str,
        symbols: SymbolTable,
        table: dict[int, frozenset[int]],
        constraints: list[Constraint],
        lexicon: Lexicon,
        lexical_table: dict[tuple[int, int], frozenset[int]] | None = None,
    ):
        self.name = name
        self.symbols = symbols
        self.table = table
        self.constraints = list(constraints)
        self.lexicon = lexicon
        #: Optional (role, category) -> allowed labels refinement of T.
        self.lexical_table = dict(lexical_table or {})
        self._validate()

    # -- structural views --------------------------------------------------

    @property
    def labels(self) -> tuple[str, ...]:
        return self.symbols.labels.names()

    @property
    def roles(self) -> tuple[str, ...]:
        return self.symbols.roles.names()

    @property
    def categories(self) -> tuple[str, ...]:
        return self.symbols.categories.names()

    @property
    def n_roles(self) -> int:
        """q — roles per word, a grammatical constant."""
        return len(self.symbols.roles)

    @property
    def n_labels(self) -> int:
        """p — distinct labels, a grammatical constant."""
        return len(self.symbols.labels)

    @property
    def unary_constraints(self) -> list[Constraint]:
        return [c for c in self.constraints if c.is_unary]

    @property
    def binary_constraints(self) -> list[Constraint]:
        return [c for c in self.constraints if c.is_binary]

    @property
    def k(self) -> int:
        """k — the total number of constraints, the paper's running-time factor."""
        return len(self.constraints)

    def allowed_labels(self, role: int, category: int | None = None) -> frozenset[int]:
        """Labels T admits for *role*, refined by *category* when available."""
        base = self.table.get(role, frozenset(range(self.n_labels)))
        if category is None:
            return base
        refined = self.lexical_table.get((role, category))
        if refined is None:
            return base
        return base & refined

    # -- sentence admission --------------------------------------------------

    def tokenize(self, text: str | list[str] | tuple[str, ...]) -> Sentence:
        """Turn raw text (or a token list) into a :class:`Sentence`.

        Raises:
            LexiconError: when a token is not covered by the lexicon.
            GrammarError: for an empty sentence.
        """
        if isinstance(text, str):
            tokens = [tok for tok in text.replace(".", " ").split() if tok]
        else:
            tokens = list(text)
        if not tokens:
            raise GrammarError("cannot parse an empty sentence")
        cats = tuple(self.lexicon.categories_of(word) for word in tokens)
        return Sentence(words=tuple(tokens), category_sets=cats)

    def tokenize_lattice(self, alternatives: list[list[str]] | list[tuple[str, ...]]) -> Sentence:
        """Build a :class:`Sentence` from per-position word hypotheses.

        This is the speech-recognition interface the paper motivates: a
        recognizer emits several candidate words per position, and the
        parser constrains them jointly — each position's category set is
        the union over its hypotheses, and the constraint network's
        category-coherence machinery selects among them exactly as it
        does for lexically ambiguous words.

        Args:
            alternatives: one non-empty list of candidate words per
                sentence position.

        Raises:
            GrammarError: on an empty lattice or an empty position.
            LexiconError: when a hypothesis is not in the lexicon.
        """
        if not alternatives:
            raise GrammarError("cannot parse an empty lattice")
        words = []
        cats = []
        for position, candidates in enumerate(alternatives, start=1):
            if not candidates:
                raise GrammarError(f"lattice position {position} has no hypotheses")
            union: frozenset[int] = frozenset()
            for word in candidates:
                union |= self.lexicon.categories_of(word)
            words.append("|".join(candidates))
            cats.append(union)
        return Sentence(words=tuple(words), category_sets=tuple(cats))

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        n_roles = len(self.symbols.roles)
        n_labels = len(self.symbols.labels)
        if n_roles < 1:
            raise GrammarError("a grammar needs at least one role")
        if n_labels < 1:
            raise GrammarError("a grammar needs at least one label")
        for role, labels in self.table.items():
            if not 0 <= role < n_roles:
                raise GrammarError(f"table entry for unknown role code {role}")
            for lab in labels:
                if not 0 <= lab < n_labels:
                    raise GrammarError(f"table for role {role} lists unknown label code {lab}")
        for (role, cat), labels in self.lexical_table.items():
            if not 0 <= role < n_roles:
                raise GrammarError(f"lexical table entry for unknown role code {role}")
            if not 0 <= cat < len(self.symbols.categories):
                raise GrammarError(f"lexical table entry for unknown category code {cat}")
            for lab in labels:
                if not 0 <= lab < n_labels:
                    raise GrammarError(f"lexical table lists unknown label code {lab}")
        if len(self.lexicon) == 0:
            raise GrammarError("the lexicon is empty")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CDGGrammar({self.name!r}: {self.n_labels} labels, {self.n_roles} roles, "
            f"{len(self.unary_constraints)} unary + {len(self.binary_constraints)} binary constraints, "
            f"{len(self.lexicon)} lexicon entries)"
        )
