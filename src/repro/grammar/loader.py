"""Load CDG grammars from an s-expression text format.

Format::

    (grammar NAME
      (labels SUBJ ROOT DET NP S BLANK)
      (roles governor needs)
      (categories det noun verb)
      (table (governor SUBJ ROOT DET)
             (needs NP S BLANK))
      (lexical (governor noun SUBJ ROOT))      ; optional refinement of T
      (lexicon (the det) (program noun verb) (runs verb))
      (constraint verbs-are-roots
        (if (and (eq (cat (word (pos x))) verb)
                 (eq (role x) governor))
            (and (eq (lab x) ROOT) (eq (mod x) nil)))))

:func:`dump_grammar` writes the same format back out, and the round trip
is covered by tests.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import GrammarError
from repro.sexpr import parse_one
from repro.sexpr.nodes import Atom, SList, SNode, sexpr_to_str
from repro.grammar.builder import GrammarBuilder
from repro.grammar.grammar import CDGGrammar


def _symbol(node: SNode, context: str) -> str:
    if isinstance(node, Atom) and node.is_symbol:
        return node.symbol()
    raise GrammarError(f"expected a symbol in {context}, got {sexpr_to_str(node)}")


def _word(node: SNode, context: str) -> str:
    """A lexicon word form — may look like an integer ("3", "42")."""
    if isinstance(node, Atom):
        return str(node.value)
    raise GrammarError(f"expected a word in {context}, got {sexpr_to_str(node)}")


def _symbols(nodes, context: str) -> list[str]:
    return [_symbol(node, context) for node in nodes]


def load_grammar(source: str) -> CDGGrammar:
    """Parse one ``(grammar NAME ...)`` form into a :class:`CDGGrammar`."""
    top = parse_one(source)
    if not isinstance(top, SList) or top.head_symbol != "grammar" or len(top) < 2:
        raise GrammarError("grammar text must start with (grammar NAME ...)")
    name = _symbol(top[1], "(grammar NAME ...)")
    builder = GrammarBuilder(name)

    sections = list(top.items[2:])
    # Namespace sections must be interned before anything that uses them,
    # regardless of the order they appear in the file.
    for section in sections:
        if not isinstance(section, SList) or section.head_symbol is None:
            raise GrammarError(f"bad grammar section: {sexpr_to_str(section)}")
        head = section.head_symbol
        if head == "labels":
            builder.labels(*_symbols(section.args, "(labels ...)"))
        elif head == "roles":
            builder.roles(*_symbols(section.args, "(roles ...)"))
        elif head == "categories":
            builder.categories(*_symbols(section.args, "(categories ...)"))

    for section in sections:
        head = section.head_symbol  # type: ignore[union-attr]
        if head in ("labels", "roles", "categories"):
            continue
        if head == "table":
            for entry in section.args:  # type: ignore[union-attr]
                if not isinstance(entry, SList) or len(entry) < 2:
                    raise GrammarError(f"bad table entry: {sexpr_to_str(entry)}")
                names = _symbols(entry.items, "(table (role LABEL...))")
                builder.table(names[0], *names[1:])
        elif head == "lexical":
            for entry in section.args:  # type: ignore[union-attr]
                if not isinstance(entry, SList) or len(entry) < 3:
                    raise GrammarError(f"bad lexical entry: {sexpr_to_str(entry)}")
                names = _symbols(entry.items, "(lexical (role category LABEL...))")
                builder.lexical(names[0], names[1], *names[2:])
        elif head == "lexicon":
            for entry in section.args:  # type: ignore[union-attr]
                if not isinstance(entry, SList) or len(entry) < 2:
                    raise GrammarError(f"bad lexicon entry: {sexpr_to_str(entry)}")
                word = _word(entry[0], "(lexicon (word category...))")
                cats = _symbols(entry.items[1:], "(lexicon (word category...))")
                builder.word(word, *cats)
        elif head == "constraint":
            args = section.args  # type: ignore[union-attr]
            if len(args) != 2:
                raise GrammarError(f"(constraint NAME (if ...)) expected, got {sexpr_to_str(section)}")
            cname = _symbol(args[0], "(constraint NAME ...)")
            builder.constraint(cname, sexpr_to_str(args[1]))
        else:
            raise GrammarError(f"unknown grammar section {head!r}")

    return builder.build()


def load_grammar_file(path: str | Path) -> CDGGrammar:
    """Load a grammar from a ``.cdg`` file."""
    return load_grammar(Path(path).read_text())


def dump_grammar(grammar: CDGGrammar) -> str:
    """Render *grammar* back to the text format (inverse of :func:`load_grammar`)."""
    lines = [f"(grammar {grammar.name}"]
    lines.append("  (labels " + " ".join(grammar.labels) + ")")
    lines.append("  (roles " + " ".join(grammar.roles) + ")")
    lines.append("  (categories " + " ".join(grammar.categories) + ")")
    table_entries = []
    for role_code in sorted(grammar.table):
        role_name = grammar.symbols.roles.name(role_code)
        label_names = sorted(grammar.symbols.labels.name(code) for code in grammar.table[role_code])
        table_entries.append(f"({role_name} " + " ".join(label_names) + ")")
    if table_entries:
        lines.append("  (table " + " ".join(table_entries) + ")")
    lexical_entries = []
    for (role_code, cat_code) in sorted(grammar.lexical_table):
        role_name = grammar.symbols.roles.name(role_code)
        cat_name = grammar.symbols.categories.name(cat_code)
        label_names = sorted(
            grammar.symbols.labels.name(code) for code in grammar.lexical_table[(role_code, cat_code)]
        )
        lexical_entries.append(f"({role_name} {cat_name} " + " ".join(label_names) + ")")
    if lexical_entries:
        lines.append("  (lexical " + " ".join(lexical_entries) + ")")
    lexicon_entries = []
    for word in grammar.lexicon.words():
        cat_names = sorted(grammar.lexicon.category_names_of(word))
        lexicon_entries.append(f"({word} " + " ".join(cat_names) + ")")
    lines.append("  (lexicon " + " ".join(lexicon_entries) + ")")
    for constraint in grammar.constraints:
        lines.append(f"  (constraint {constraint.name} {constraint.source})")
    lines.append(")")
    return "\n".join(lines)
