"""Fluent builder for CDG grammars defined in Python code."""

from __future__ import annotations

from repro.errors import GrammarError
from repro.constraints import Constraint, SymbolTable
from repro.grammar.grammar import CDGGrammar
from repro.grammar.lexicon import Lexicon


class GrammarBuilder:
    """Assemble a :class:`CDGGrammar` declaration by declaration.

    Order matters only in that labels/roles/categories must be declared
    before the tables, lexicon entries and constraints that mention them —
    constraints resolve symbols at :meth:`constraint` time.

    Example::

        builder = GrammarBuilder("demo")
        builder.labels("SUBJ", "ROOT")
        builder.roles("governor")
        builder.categories("noun", "verb")
        builder.table("governor", "SUBJ", "ROOT")
        builder.word("dogs", "noun")
        builder.constraint("verbs-root", '''
            (if (and (eq (cat (word (pos x))) verb)
                     (eq (role x) governor))
                (eq (lab x) ROOT))''')
        grammar = builder.build()
    """

    def __init__(self, name: str):
        self._name = name
        self._symbols = SymbolTable()
        self._lexicon = Lexicon(self._symbols.categories)
        self._table: dict[int, frozenset[int]] = {}
        self._lexical_table: dict[tuple[int, int], frozenset[int]] = {}
        self._constraints: list[Constraint] = []
        self._names_seen: set[str] = set()

    # -- namespaces ----------------------------------------------------------

    def labels(self, *names: str) -> "GrammarBuilder":
        for name in names:
            self._symbols.labels.intern(name)
        return self

    def roles(self, *names: str) -> "GrammarBuilder":
        for name in names:
            self._symbols.roles.intern(name)
        return self

    def categories(self, *names: str) -> "GrammarBuilder":
        for name in names:
            self._symbols.categories.intern(name)
        return self

    # -- tables ----------------------------------------------------------------

    def table(self, role: str, *labels: str) -> "GrammarBuilder":
        """Declare T's allowed labels for *role*."""
        role_code = self._symbols.roles.code(role)
        label_codes = frozenset(self._symbols.labels.code(lab) for lab in labels)
        self._table[role_code] = self._table.get(role_code, frozenset()) | label_codes
        return self

    def lexical(self, role: str, category: str, *labels: str) -> "GrammarBuilder":
        """Refine T for (role, category) — the paper's footnote 1."""
        key = (self._symbols.roles.code(role), self._symbols.categories.code(category))
        codes = frozenset(self._symbols.labels.code(lab) for lab in labels)
        self._lexical_table[key] = self._lexical_table.get(key, frozenset()) | codes
        return self

    # -- lexicon -----------------------------------------------------------------

    def word(self, word: str, *categories: str) -> "GrammarBuilder":
        self._lexicon.add(word, *categories)
        return self

    def words(self, entries: dict[str, str | tuple[str, ...]]) -> "GrammarBuilder":
        for word, cats in entries.items():
            if isinstance(cats, str):
                cats = (cats,)
            self._lexicon.add(word, *cats)
        return self

    # -- constraints ------------------------------------------------------------

    def constraint(self, name: str, source: str) -> "GrammarBuilder":
        if name in self._names_seen:
            raise GrammarError(f"duplicate constraint name {name!r}")
        self._names_seen.add(name)
        self._constraints.append(Constraint.parse(source, self._symbols, name=name))
        return self

    # -- finish -------------------------------------------------------------------

    def build(self) -> CDGGrammar:
        return CDGGrammar(
            name=self._name,
            symbols=self._symbols,
            table=dict(self._table),
            constraints=self._constraints,
            lexicon=self._lexicon,
            lexical_table=self._lexical_table,
        )
