"""CDG grammars: the 5-tuple, lexicon, builder, loader and built-ins."""

from repro.grammar.builder import GrammarBuilder
from repro.grammar.grammar import CDGGrammar, Sentence
from repro.grammar.lexicon import Lexicon
from repro.grammar.loader import dump_grammar, load_grammar, load_grammar_file

__all__ = [
    "CDGGrammar",
    "Sentence",
    "Lexicon",
    "GrammarBuilder",
    "load_grammar",
    "load_grammar_file",
    "dump_grammar",
]
