"""Lexicon: surface words -> possible part-of-speech categories.

The paper's constraint networks record "the possible parts of speech for
that word" in each node; lexical ambiguity (e.g. *program* as noun or
verb) is therefore first-class here.  Lookup is case-insensitive on the
word form, which is how the examples in the paper treat "The".
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import LexiconError
from repro.constraints.symbols import Interner


class Lexicon:
    """A finite word -> category-set map over an interned category space."""

    def __init__(self, categories: Interner):
        self._categories = categories
        self._entries: dict[str, frozenset[int]] = {}

    @property
    def categories(self) -> Interner:
        return self._categories

    def add(self, word: str, *category_names: str) -> None:
        """Add (or extend) the entry for *word*."""
        if not category_names:
            raise LexiconError(f"word {word!r} needs at least one category")
        codes = frozenset(self._categories.code(name) for name in category_names)
        key = word.lower()
        self._entries[key] = self._entries.get(key, frozenset()) | codes

    def categories_of(self, word: str) -> frozenset[int]:
        """Category codes for *word*; raises :class:`LexiconError` if unknown."""
        try:
            return self._entries[word.lower()]
        except KeyError:
            raise LexiconError(f"word {word!r} is not in the lexicon") from None

    def category_names_of(self, word: str) -> frozenset[str]:
        return frozenset(self._categories.name(code) for code in self.categories_of(word))

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def words(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def items(self) -> Iterable[tuple[str, frozenset[int]]]:
        return self._entries.items()

    def as_mapping(self) -> Mapping[str, frozenset[int]]:
        return dict(self._entries)
