"""PARSEC — Parallel ARchitecture SEntence Constrainer.

A production-quality reproduction of Helzerman & Harper, *Log Time
Parsing on the MasPar MP-1* (ICPP 1992): Constraint Dependency Grammar
(CDG) parsing, its parallelization, and simulators for the machines the
paper runs on (a CRCW P-RAM and the MasPar MP-1 SIMD array).

Quickstart::

    from repro import ParserSession, extract_parses
    from repro.grammar.builtin import program_grammar

    session = ParserSession(program_grammar(), engine="vector")
    result = session.parse("The program runs")
    for parse in extract_parses(result.network):
        print(parse.describe(session.grammar.symbols))

A :class:`ParserSession` compiles the grammar once and caches network
templates per sentence shape, so batches (``session.parse_many``)
amortize everything but propagation itself.  The one-shot form
``VectorEngine().parse(grammar, words)`` still works.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.constraints import Constraint, SymbolTable
from repro.engines import (
    EngineStats,
    ParserEngine,
    ParseResult,
    PRAMEngine,
    SerialEngine,
    VectorEngine,
    all_engines,
    available_engines,
    create_engine,
    register_engine,
)
from repro.errors import (
    ConcurrentSessionUse,
    ConstraintError,
    ExtractionError,
    GrammarError,
    LexiconError,
    MachineError,
    NetworkError,
    ReproError,
    SexprSyntaxError,
    StreamError,
)
from repro.cluster import (
    ClusterClient,
    ClusterError,
    ClusterLauncher,
    ParseServer,
    ShardRouter,
)
from repro.grammar import CDGGrammar, GrammarBuilder, Sentence, load_grammar, load_grammar_file
from repro.mesh.engine import MeshEngine
from repro.network import ConstraintNetwork, RoleValue
from repro.parallel import ParallelSession, SharedTemplateStore
from repro.parsec.parser import MasParEngine
from repro.pipeline import (
    CompiledGrammar,
    NetworkTemplate,
    ParserSession,
    StreamingParse,
    compile_grammar,
)
from repro.search import PrecedenceGraph, accepts, count_parses, extract_parses
from repro.serve import (
    DeadlineExceeded,
    ParseService,
    ServeError,
    ServiceMetrics,
    ServiceOverloaded,
    ServiceUnavailable,
)

__version__ = "1.10.0"

# Opt-in runtime invariant checking (REPRO_SANITIZE=1); see
# repro.analysis.sanitizer.  A no-op unless the variable is set.
from repro.analysis.sanitizer import maybe_enable_from_env as _maybe_sanitize

_maybe_sanitize()

__all__ = [
    "__version__",
    # grammar
    "CDGGrammar",
    "GrammarBuilder",
    "Sentence",
    "load_grammar",
    "load_grammar_file",
    "Constraint",
    "SymbolTable",
    # network & parsing
    "ConstraintNetwork",
    "RoleValue",
    "ParserEngine",
    "ParseResult",
    "EngineStats",
    "SerialEngine",
    "VectorEngine",
    "PRAMEngine",
    "MasParEngine",
    "MeshEngine",
    "all_engines",
    "available_engines",
    "create_engine",
    "register_engine",
    # pipeline
    "ParserSession",
    "StreamingParse",
    "CompiledGrammar",
    "compile_grammar",
    "NetworkTemplate",
    # process-parallel data plane
    "ParallelSession",
    "SharedTemplateStore",
    "PrecedenceGraph",
    "extract_parses",
    "count_parses",
    "accepts",
    # serving
    "ParseService",
    "ServiceMetrics",
    "ServeError",
    "ServiceOverloaded",
    "DeadlineExceeded",
    "ServiceUnavailable",
    "ConcurrentSessionUse",
    # networked cluster
    "ClusterClient",
    "ClusterError",
    "ClusterLauncher",
    "ParseServer",
    "ShardRouter",
    # errors
    "ReproError",
    "SexprSyntaxError",
    "ConstraintError",
    "GrammarError",
    "LexiconError",
    "NetworkError",
    "MachineError",
    "ExtractionError",
    "StreamError",
]
