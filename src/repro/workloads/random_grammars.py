"""Random CDG grammar generation (fuzzing workloads).

The cross-engine equivalence invariant must hold for *every* grammar,
not just the hand-written ones; this generator samples small random
grammars — random label/category/role spaces, random tables, and random
constraints drawn from the idiom templates of the constraint language —
plus random sentences over their lexicons, giving the equivalence tests
an adversarial workload no human grammar writer would produce.
"""

from __future__ import annotations

import random

from repro.grammar.builder import GrammarBuilder
from repro.grammar.grammar import CDGGrammar


def _predicate(rng: random.Random, var: str, labels, cats, roles) -> str:
    """One random atomic predicate over *var*."""
    kind = rng.choice(
        ["lab", "cat", "role", "mod-nil", "pos-lit", "mod-dir", "mod-cat"]
    )
    if kind == "lab":
        return f"(eq (lab {var}) {rng.choice(labels)})"
    if kind == "cat":
        return f"(eq (cat (word (pos {var}))) {rng.choice(cats)})"
    if kind == "role":
        return f"(eq (role {var}) {rng.choice(roles)})"
    if kind == "mod-nil":
        inner = f"(eq (mod {var}) nil)"
        return inner if rng.random() < 0.5 else f"(not {inner})"
    if kind == "pos-lit":
        op = rng.choice(["eq", "gt", "lt"])
        return f"({op} (pos {var}) {rng.randint(1, 4)})"
    if kind == "mod-dir":
        op = rng.choice(["gt", "lt"])
        return f"({op} (mod {var}) (pos {var}))"
    return f"(eq (cat (word (mod {var}))) {rng.choice(cats)})"


def _pair_predicate(rng: random.Random, labels, cats, roles) -> str:
    """One random atomic predicate relating x and y."""
    kind = rng.choice(["order", "point", "same-mod", "labels"])
    if kind == "order":
        op = rng.choice(["gt", "lt"])
        return f"({op} (pos x) (pos y))"
    if kind == "point":
        return "(eq (pos y) (mod x))"
    if kind == "same-mod":
        return "(eq (mod x) (mod y))"
    return f"(and (eq (lab x) {rng.choice(labels)}) (eq (lab y) {rng.choice(labels)}))"


def _clause(rng: random.Random, parts: list[str]) -> str:
    if len(parts) == 1:
        return parts[0]
    joiner = rng.choice(["and", "or"])
    return f"({joiner} " + " ".join(parts) + ")"


def random_grammar(rng: random.Random) -> CDGGrammar:
    """Sample one small, structurally valid CDG grammar."""
    n_labels = rng.randint(2, 4)
    n_cats = rng.randint(1, 3)
    n_roles = rng.randint(1, 3)
    labels = [f"L{i}" for i in range(n_labels)]
    cats = [f"c{i}" for i in range(n_cats)]
    roles = [f"r{i}" for i in range(n_roles)]

    builder = GrammarBuilder(f"fuzz-{rng.randrange(10**6)}")
    builder.labels(*labels)
    builder.roles(*roles)
    builder.categories(*cats)
    for role in roles:
        # Every role admits a random non-empty subset of labels.
        subset = rng.sample(labels, rng.randint(1, n_labels))
        builder.table(role, *subset)
    # A small lexicon: every category gets at least one word.
    for index, cat in enumerate(cats):
        builder.word(f"w{index}", cat)
        if rng.random() < 0.4:
            builder.word(f"amb{index}", cat, rng.choice(cats))

    n_unary = rng.randint(1, 4)
    n_binary = rng.randint(0, 4)
    for index in range(n_unary):
        antecedent = _clause(
            rng, [_predicate(rng, "x", labels, cats, roles) for _ in range(rng.randint(1, 2))]
        )
        consequent = _clause(
            rng, [_predicate(rng, "x", labels, cats, roles) for _ in range(rng.randint(1, 2))]
        )
        builder.constraint(f"u{index}", f"(if {antecedent} {consequent})")
    for index in range(n_binary):
        antecedent = _clause(
            rng,
            [_pair_predicate(rng, labels, cats, roles)]
            + [
                _predicate(rng, rng.choice(["x", "y"]), labels, cats, roles)
                for _ in range(rng.randint(0, 1))
            ],
        )
        consequent = _clause(
            rng,
            [
                rng.choice(
                    [
                        _pair_predicate(rng, labels, cats, roles),
                        _predicate(rng, rng.choice(["x", "y"]), labels, cats, roles),
                    ]
                )
            ],
        )
        builder.constraint(f"b{index}", f"(if {antecedent} {consequent})")
    return builder.build()


def random_sentence_for(grammar: CDGGrammar, rng: random.Random, max_len: int = 5) -> list[str]:
    """A random token sequence over *grammar*'s lexicon."""
    words = grammar.lexicon.words()
    return [rng.choice(words) for _ in range(rng.randint(1, max_len))]
