"""Workload sentences for the English grammar.

The paper's time trials sweep sentence length ("one to seven words",
"a sentence of 10 words"); :func:`sentence_of_length` builds a
grammatical English sentence of *exactly* n words for any n >= 2, by
composing a core clause with prepositional-phrase chunks (3 words each)
and attributive adjectives (1 word each):

    n=2   dogs bark
    n=5   the dog sees the cat
    n=8   the dog sees the cat in the park
    n=10  the big quick dog sees the cat in the park

:func:`random_sentence` draws words from the same pools with a seeded
generator, for property-based testing.
"""

from __future__ import annotations

import random

NOUNS = ("dog", "cat", "park", "man", "woman", "tree", "bird", "house", "telescope", "computer")
ADJS = ("big", "red", "old", "small", "happy", "quick", "lazy")
PREPS = ("in", "on", "with", "under", "near")
VERBS_TRANS = ("sees", "likes", "chases")
VERBS_INTRANS = ("runs", "sleeps", "walks")
ADVS = ("quickly", "slowly", "often", "loudly")


def sentence_of_length(n: int) -> list[str]:
    """A grammatical sentence of exactly *n* words (n >= 2).

    n=1 returns the single noun ``["dogs"]``, which the grammar rejects
    (a lone noun fills no role) — still a valid *workload* for the
    constraint-propagation timing sweeps, mirroring the paper's
    "one to seven words" trials.
    """
    if n < 1:
        raise ValueError(f"sentence length must be >= 1, got {n}")
    if n == 1:
        return ["dogs"]
    if n == 2:
        return ["dogs", "bark"]
    if n == 3:
        return ["the", "dog", "runs"]
    if n == 4:
        return ["the", "big", "dog", "runs"]

    # Core transitive clause: "the dog sees the cat" (5 words), then
    # PP chunks of 3, then adjectives to make up the remainder.
    n_pp, n_adj = divmod(n - 5, 3)
    subject = ["the", "dog"]
    obj = ["the", "cat"]
    pps: list[list[str]] = []
    for i in range(n_pp):
        noun = NOUNS[(2 + i) % len(NOUNS)]
        pps.append([PREPS[i % len(PREPS)], "the", noun])

    # Distribute adjectives over the noun phrases (subject first).
    phrases = [subject, obj] + pps
    for i in range(n_adj):
        phrase = phrases[i % len(phrases)]
        # Insert before the noun (the last token of the phrase).
        phrase.insert(len(phrase) - 1, ADJS[i % len(ADJS)])

    words = subject + ["sees"] + obj
    for pp in pps:
        words += pp
    assert len(words) == n, (len(words), n)
    return words


def toy_sentence(n: int) -> list[str]:
    """An n-word workload over the *toy* grammar's lexicon.

    Only n <= 3 is grammatical; longer strings are still valid timing
    workloads (constraint propagation cost does not depend on
    acceptance), which is how the paper's n-sweep must have been run —
    its example grammar only covers three-word sentences.
    """
    if n < 1:
        raise ValueError(f"sentence length must be >= 1, got {n}")
    if n == 1:
        return ["program"]
    if n == 2:
        return ["program", "runs"]
    return ["the"] * (n - 2) + ["program", "runs"]


def random_sentence(rng: random.Random, max_pps: int = 2, max_adjs: int = 2) -> list[str]:
    """A random grammatical sentence: NP V [NP] [PP]* with optional adverb."""

    def noun_phrase() -> list[str]:
        out = [rng.choice(("the", "a", "every", "some"))]
        for _ in range(rng.randrange(max_adjs + 1)):
            out.append(rng.choice(ADJS))
        out.append(rng.choice(NOUNS))
        return out

    words = noun_phrase()
    if rng.random() < 0.6:
        words.append(rng.choice(VERBS_TRANS))
        words += noun_phrase()
    else:
        words.append(rng.choice(VERBS_INTRANS))
    for _ in range(rng.randrange(max_pps + 1)):
        words += [rng.choice(PREPS)] + noun_phrase()
    if rng.random() < 0.3:
        words.append(rng.choice(ADVS))
    return words


def scrambled_sentence(rng: random.Random, **kwargs) -> list[str]:
    """A random sentence with its word order shuffled (usually rejected)."""
    words = random_sentence(rng, **kwargs)
    rng.shuffle(words)
    return words


def corpus(seed: int = 0, size: int = 30) -> list[list[str]]:
    """A deterministic mixed corpus of grammatical sentences."""
    rng = random.Random(seed)
    return [random_sentence(rng) for _ in range(size)]
