"""Workload generators for tests and benchmarks."""

from repro.workloads.sentences import (
    corpus,
    random_sentence,
    scrambled_sentence,
    sentence_of_length,
    toy_sentence,
)

__all__ = [
    "corpus",
    "random_sentence",
    "scrambled_sentence",
    "sentence_of_length",
    "toy_sentence",
]
