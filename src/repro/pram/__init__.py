"""CRCW P-RAM simulator (paper section 2.1's model of computation)."""

from repro.pram.machine import CRCWPram, ProcContext, StepStats

__all__ = ["CRCWPram", "ProcContext", "StepStats"]
