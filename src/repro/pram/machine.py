"""A CRCW P-RAM simulator.

The machine executes *synchronous parallel steps*: in each step every
processor runs the same program on its processor id, all reads observe
the memory state from before the step, and all writes commit together
at the end of the step.  Write conflicts are resolved by policy:

* ``common`` — concurrent writers to a cell must agree (the model the
  paper's O(k) bound uses for its constant-time AND/OR idiom);
* ``arbitrary`` — "a single random processor will succeed" (the paper's
  stated assumption): one writer wins, chosen by a seeded RNG so runs
  are reproducible.

Memory is a set of named numpy arrays (regions), addressed as
``(region, index...)``.  The step counter and the peak processor count
are the quantities the complexity claims are about; the engine layer
(:mod:`repro.engines.pram`) asserts O(k) steps with O(n^4) processors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import MachineError

Address = tuple


@dataclass
class StepStats:
    steps: int = 0
    peak_processors: int = 0
    total_work: int = 0  # sum over steps of processors used

    def record(self, processors: int) -> None:
        self.steps += 1
        self.peak_processors = max(self.peak_processors, processors)
        self.total_work += processors


class ProcContext:
    """What one processor sees during a step: reads old state, queues writes."""

    __slots__ = ("pid", "_machine", "_writes")

    def __init__(self, pid: int, machine: "CRCWPram", writes: list):
        self.pid = pid
        self._machine = machine
        self._writes = writes

    def read(self, region: str, *index):
        """Read a cell (pre-step state — synchronous PRAM semantics)."""
        return self._machine._read_snapshot(region, index)

    def write(self, region: str, *index_and_value):
        """Queue a write; commits (with conflict resolution) at step end."""
        *index, value = index_and_value
        self._writes.append((region, tuple(index), value, self.pid))


class CRCWPram:
    """The machine.  See module docstring."""

    def __init__(self, policy: str = "arbitrary", seed: int = 0):
        if policy not in ("common", "arbitrary"):
            raise MachineError(f"unknown write policy {policy!r}")
        self.policy = policy
        self._rng = random.Random(seed)
        self._memory: dict[str, np.ndarray] = {}
        self._snapshot: dict[str, np.ndarray] = {}
        self.stats = StepStats()

    # -- memory management (host side, free) ----------------------------

    def alloc(self, region: str, shape, dtype=np.int64, fill=0) -> None:
        if region in self._memory:
            raise MachineError(f"region {region!r} already allocated")
        self._memory[region] = np.full(shape, fill, dtype=dtype)

    def free(self, region: str) -> None:
        self._memory.pop(region, None)

    def host_read(self, region: str) -> np.ndarray:
        """The host may inspect memory between steps (standard PRAM I/O)."""
        return self._memory[region]

    def host_write(self, region: str, values: np.ndarray) -> None:
        self._memory[region][...] = values

    def _read_snapshot(self, region: str, index):
        try:
            return self._snapshot[region][index]
        except KeyError:
            raise MachineError(f"read from unallocated region {region!r}") from None

    # -- execution ---------------------------------------------------------

    def step(self, n_processors: int, program: Callable[[ProcContext], None]) -> None:
        """Run one synchronous step of *program* on ``n_processors`` procs."""
        if n_processors <= 0:
            raise MachineError(f"a step needs at least one processor, got {n_processors}")
        self._snapshot = {name: arr.copy() for name, arr in self._memory.items()}
        writes: list = []
        for pid in range(n_processors):
            program(ProcContext(pid, self, writes))
        self._commit(writes)
        self._snapshot = {}
        self.stats.record(n_processors)

    def _commit(self, writes: list) -> None:
        by_cell: dict[tuple[str, tuple], list] = {}
        for region, index, value, pid in writes:
            if region not in self._memory:
                raise MachineError(f"write to unallocated region {region!r}")
            by_cell.setdefault((region, index), []).append((pid, value))
        for (region, index), writers in by_cell.items():
            if len(writers) == 1:
                value = writers[0][1]
            elif self.policy == "common":
                values = {v for _, v in writers}
                if len(values) != 1:
                    raise MachineError(
                        f"COMMON-CRCW conflict at {region}{index}: values {values}"
                    )
                value = writers[0][1]
            else:  # arbitrary: a single random processor succeeds
                value = self._rng.choice(writers)[1]
            self._memory[region][index] = value
