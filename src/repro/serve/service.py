"""The parse service: concurrent producers, shape-coherent dispatch.

:class:`ParseService` is the serving layer the ROADMAP's north star
asks for — the single-caller :class:`~repro.pipeline.session.ParserSession`
turned into a system that many threads can throw sentences at::

    from repro.serve import ParseService
    from repro.grammar.builtin import english_grammar

    with ParseService(english_grammar(), engine="vector", workers=2) as svc:
        future = svc.submit("the dog sees the cat", timeout=0.5)
        result = future.result()          # a ParseResult
        print(svc.metrics.render())

Architecture (one bounded queue, one mutex, three condition variables)::

    producers ── submit() ──▶ admission ──▶ ShapeBatcher ──▶ N workers
                  (reject/block when full)   (size-or-linger   (one private
                                              single-shape      ParserSession
                                              batches)          each)

* **Admission control** — the queue is bounded by ``max_queue``; when
  full, ``admission="reject"`` raises :class:`ServiceOverloaded`,
  ``admission="block"`` makes ``submit`` wait for space.
* **Deadlines** — per-request (or service-default) timeouts; a request
  whose deadline passes while queued is completed with
  :class:`DeadlineExceeded` and never dispatched.  Cancelling the
  returned future before dispatch likewise prevents dispatch.
* **Shape-batched scheduling** — requests are grouped by the sentence's
  category signature (the exact :class:`NetworkTemplate` cache key), so
  every dispatched batch binds against one cached template.  Under a
  shape-interleaved load with more live shapes than the bounded
  template LRU, this is the difference between thrashing (every parse
  rebuilds a template) and near-perfect cache locality — see
  ``benchmarks/bench_service.py``.
* **Lifecycle** — ``start()`` spawns the workers, ``drain()`` stops
  admission and waits for queued + in-flight work, ``shutdown()``
  drains (when ``wait=True``) and joins the workers.  The context
  manager form does start/shutdown automatically.
* **Metrics** — a :class:`ServiceMetrics` instance updated on every
  transition; ``snapshot()`` adds service state and the workers'
  aggregated template-cache counters.

Correctness invariant (enforced by the end-to-end tests): for the same
sentences, service results are bit-identical to
``ParserSession.parse_many`` on one session with the same grammar,
engine, and filter limit — scheduling changes *when* work runs, never
what it computes.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from typing import Iterable, Sequence

from repro.engines.base import ParseResult, ParserEngine
from repro.errors import StreamError
from repro.grammar.grammar import CDGGrammar, Sentence
from repro.pipeline.session import DEFAULT_TEMPLATE_CACHE, ParserSession
from repro.serve.batcher import ParseRequest, ShapeBatcher
from repro.serve.errors import DeadlineExceeded, ServiceOverloaded, ServiceUnavailable
from repro.serve.metrics import ServiceMetrics
from repro.serve.worker import Worker

#: Project-wide lock acquisition order (checked by repro-lint RPR014):
#: the service mutex is always taken before any metrics-instrument lock —
#: instruments never call back into the service, so the reverse edge
#: cannot exist and the hierarchy stays acyclic.
LOCK_ORDER = ("ParseService._lock", "Counter._lock", "Gauge._lock", "Histogram._lock")

#: Sentinel distinguishing "not passed" from an explicit None.
_UNSET = object()

_service_ids = itertools.count(1)


class ServiceStream:
    """A server-side incremental parse: one growing sentence per handle.

    Opened with :meth:`ParseService.submit_stream`.  Each ``feed(word)``
    queues one token and returns a future resolving to the
    :class:`~repro.engines.base.ParseResult` of the grown prefix —
    bit-identical to submitting the whole prefix as a sentence, but
    incremental: the worker that executes the stream's first token
    becomes its permanent owner (the retained
    :class:`~repro.pipeline.streaming.StreamingParse` state lives in
    that worker's session), and later tokens are routed to it in strict
    FIFO order through the normal admission/deadline/batching
    machinery.  A token that fails, expires, or is cancelled *poisons*
    the stream — the prefix chain is broken, so further tokens fail
    with :class:`~repro.errors.StreamError` — and ``close()`` releases
    the retained network state once queued tokens drain.
    """

    __slots__ = (
        "_service", "stream_id", "key", "owner", "busy",
        "broken", "closed", "parse", "tokens",
    )

    def __init__(self, service: "ParseService", stream_id: int):
        self._service = service
        self.stream_id = stream_id
        self.key = ("stream", stream_id)  # private batcher group key
        self.owner: str | None = None  # worker name; set at first dispatch
        self.busy = False  # a token batch is executing right now
        self.broken = False
        self.closed = False
        self.parse = None  # the owner worker's StreamingParse, once opened
        self.tokens = 0

    def feed(
        self, word: str, *, timeout: "float | None | object" = _UNSET
    ) -> "Future[ParseResult]":
        """Queue one token; the future resolves to the prefix's result."""
        return self._service._submit_stream_token(self, word, timeout=timeout)

    def close(self) -> None:
        """Stop feeding; retained state is dropped once tokens drain."""
        self._service._close_stream(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "broken" if self.broken else ("closed" if self.closed else "open")
        return (
            f"ServiceStream(id={self.stream_id}, {state}, tokens={self.tokens}, "
            f"owner={self.owner!r})"
        )


class ParseService:
    """A concurrent, shape-batching front end over a pool of sessions.

    Args:
        grammar: the grammar all requests are parsed under.
        engine: an engine *name* from the registry — each worker builds
            its own instance.  A :class:`ParserEngine` instance is only
            accepted with ``workers=1`` (engines, like sessions, are
            not shared across threads).
        workers: worker threads, each owning a private
            :class:`ParserSession`.
        max_queue: bound on queued (not yet dispatched) requests.
        max_memory_bytes: optional bound on the *estimated* bytes of
            queued work.  Estimates are per-shape network sizes the
            workers record after each parse (the packed core makes
            them small and exact), so admission can reason about
            memory, not just request count.  A shape never seen
            estimates as 0, and a request arriving at an empty queue
            is always admitted — the bound is backpressure, not a
            hard per-request limit.
        admission: ``"reject"`` (raise :class:`ServiceOverloaded` when
            full) or ``"block"`` (make ``submit`` wait for space).
        workers_mode: ``"thread"`` (default — each worker thread parses
            in-process through its session) or ``"process"`` — worker
            threads keep the same admission/batching/metrics/drain
            lifecycle but dispatch each batch to a pool of worker
            *processes* that attach templates from a shared-memory
            store (see :mod:`repro.parallel`), putting real cores
            behind the batch instead of GIL-interleaved threads.
            Process mode requires an engine *name* (instances cannot
            cross the process boundary).
        start_method: multiprocessing start method for process mode
            (``None`` = fork where available, else spawn).
        max_batch_size / max_linger: the dynamic batcher's flush rules
            (see :class:`ShapeBatcher`).
        default_timeout: deadline in seconds applied to requests that
            do not pass their own ``timeout``; ``None`` = no deadline.
        kernel_backend: a kernel-backend name from
            :mod:`repro.kernels.backend` forwarded to every worker's
            session (and, in process mode, exported to the worker
            processes); None keeps the process default.
        filter_limit / template_cache_size: forwarded to every worker's
            session.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        grammar: CDGGrammar,
        engine: "str | ParserEngine" = "vector",
        *,
        workers: int = 2,
        max_queue: int = 256,
        max_memory_bytes: int | None = None,
        admission: str = "reject",
        max_batch_size: int = 16,
        max_linger: float = 0.002,
        default_timeout: float | None = None,
        kernel_backend: "str | None" = None,
        filter_limit: int | None = None,
        template_cache_size: int = DEFAULT_TEMPLATE_CACHE,
        workers_mode: str = "thread",
        start_method: str | None = None,
        clock=time.monotonic,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_memory_bytes is not None and max_memory_bytes < 1:
            raise ValueError(f"max_memory_bytes must be >= 1, got {max_memory_bytes}")
        if admission not in ("reject", "block"):
            raise ValueError(f"admission must be 'reject' or 'block', got {admission!r}")
        if workers_mode not in ("thread", "process"):
            raise ValueError(
                f"workers_mode must be 'thread' or 'process', got {workers_mode!r}"
            )
        if isinstance(engine, ParserEngine):
            if workers_mode == "process":
                raise ValueError(
                    "process workers need an engine name from the registry; "
                    "engine instances cannot be shipped to child processes"
                )
            if workers > 1:
                raise ValueError(
                    "an engine instance cannot be shared across workers; "
                    "pass an engine name (each worker then builds its own)"
                )
        self.grammar = grammar
        self.n_workers = workers
        self.workers_mode = workers_mode
        self._start_method = start_method
        self._pool = None  # set by start() in process mode
        self._store = None
        self.max_queue = max_queue
        self.max_memory_bytes = max_memory_bytes
        self.admission = admission
        self.default_timeout = default_timeout
        self.metrics = ServiceMetrics()
        self._engine_spec = engine
        self._kernel_backend = kernel_backend
        self._filter_limit = filter_limit
        self._template_cache_size = template_cache_size
        self._clock = clock
        self._batcher = ShapeBatcher(max_batch_size=max_batch_size, max_linger=max_linger)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)  # workers: new work queued
        self._space = threading.Condition(self._lock)  # producers: queue has room
        self._idle = threading.Condition(self._lock)  # drain: queue empty, nothing in flight
        self._state = "new"  # new -> running -> draining -> stopped
        self._in_flight = 0
        self._shape_bytes: dict = {}  # shape key -> measured network bytes
        self._queued_bytes = 0  # sum of est_bytes over queued requests
        self._streams: dict[int, ServiceStream] = {}
        self._stream_ids = itertools.count(1)
        self._workers: list[Worker] = []
        self._name = f"parse-service-{next(_service_ids)}"

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ParseService":
        """Spawn the worker pool and begin accepting requests."""
        with self._lock:
            if self._state != "new":
                raise ServiceUnavailable(
                    f"service is {self._state}; a ParseService starts exactly once"
                )
            self._state = "running"
        if self.workers_mode == "process":
            # Fork/spawn the process pool *before* any worker thread
            # exists (forking a multi-threaded parent copies lock state
            # mid-flight), and create the store the worker threads will
            # export templates into.  Shutdown order is the reverse:
            # pool first, store (unlink) second.
            from repro.parallel import ProcessPool, SharedTemplateStore

            self._store = SharedTemplateStore()
            self._pool = ProcessPool(
                self.grammar,
                self._engine_spec,
                workers=self.n_workers,
                start_method=self._start_method,
                kernel_backend=self._kernel_backend,
            )
        for index in range(self.n_workers):
            # A string spec makes each session build its own engine
            # instance via the registry; an instance spec (workers=1
            # only) passes through.
            session = ParserSession(
                self.grammar,
                engine=self._engine_spec,
                backend=self._kernel_backend,
                filter_limit=self._filter_limit,
                template_cache_size=self._template_cache_size,
            )
            worker = Worker(f"{self._name}-w{index}", self, session)
            self._workers.append(worker)
            worker.start()
        return self

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admission, then wait for queued + in-flight work.

        Queued requests are force-flushed (linger/size rules waived)
        but deadlines still apply: an expired request drains as
        :class:`DeadlineExceeded`, not as a parse.  Returns ``True``
        when the service went idle, ``False`` on timeout.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            if self._state == "running":
                self._state = "draining"
            self._work.notify_all()
            self._space.notify_all()
            while len(self._batcher) > 0 or self._in_flight > 0:
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def shutdown(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop the service and join the workers.

        With ``wait=True`` (the default) all accepted work drains
        first.  With ``wait=False`` queued requests are abandoned —
        their futures fail with :class:`ServiceUnavailable` — and the
        workers exit after their current batch.
        """
        if wait:
            self.drain(timeout)
        with self._lock:
            self._state = "stopped"
            leftovers = self._batcher.clear()
            self._queued_bytes = 0
            self.metrics.queued_bytes.set(0)
            self.metrics.queue_depth.set(0)
            self._work.notify_all()
            self._space.notify_all()
            self._idle.notify_all()
        for request in leftovers:
            if request.stream is not None:
                self._poison_stream(request.stream)
            self.metrics.cancelled.inc()
            if not request.future.cancelled():
                request.future.set_exception(
                    ServiceUnavailable("service shut down before this request was dispatched")
                )
        with self._lock:
            # Release every stream's retained network state; handles
            # survive as inert records (feed() rejects on a stopped
            # service anyway).
            for stream in self._streams.values():
                stream.parse = None
            self._streams.clear()
        for worker in self._workers:
            worker.join(timeout)
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "ParseService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    @property
    def state(self) -> str:
        return self._state

    # -- the producer API --------------------------------------------------

    def submit(
        self,
        sentence: "Sentence | str | Sequence[str]",
        *,
        timeout: "float | None | object" = _UNSET,
    ) -> "Future[ParseResult]":
        """Queue *sentence*; returns a future resolving to a ParseResult.

        Raises :class:`ServiceOverloaded` (queue full, reject mode) or
        :class:`ServiceUnavailable` (service not running).  The future
        fails with :class:`DeadlineExceeded` if the request's deadline
        passes before dispatch; ``future.cancel()`` before dispatch
        prevents the parse entirely.
        """
        sent = sentence if isinstance(sentence, Sentence) else self.grammar.tokenize(sentence)
        limit = self.default_timeout if timeout is _UNSET else timeout
        now = self._clock()
        request = ParseRequest(
            sentence=sent,
            key=sent.category_sets,
            enqueued=now,
            deadline=None if limit is None else now + limit,
        )
        with self._lock:
            self.metrics.submitted.inc()
            if self._state != "running":
                self.metrics.rejected.inc()
                raise ServiceUnavailable(f"service is {self._state}, not accepting requests")
            request.est_bytes = self._shape_bytes.get(request.key, 0)
            reason = self._admission_reason(request)
            if reason is not None:
                if self.admission == "reject":
                    self.metrics.rejected.inc()
                    raise ServiceOverloaded(
                        f"{reason}; retry later, raise the bound, or use admission='block'"
                    )
                while self._admission_reason(request) and self._state == "running":
                    # Only reachable under admission="block"; cluster shards
                    # pin admission="reject" (see ParseServer.__init__), so
                    # no event-loop thread can park here.
                    self._space.wait()  # repro-lint: ignore[RPR015]
                if self._state != "running":
                    self.metrics.rejected.inc()
                    raise ServiceUnavailable(f"service is {self._state}, not accepting requests")
            self._batcher.add(request)
            self._queued_bytes += request.est_bytes
            self.metrics.queued_bytes.set(self._queued_bytes)
            self.metrics.accepted.inc()
            self.metrics.queue_depth.set(len(self._batcher))
            self._work.notify()
        return request.future

    def parse(
        self,
        sentence: "Sentence | str | Sequence[str]",
        *,
        timeout: "float | None | object" = _UNSET,
    ) -> ParseResult:
        """Blocking convenience: ``submit(...).result()``."""
        return self.submit(sentence, timeout=timeout).result()

    def parse_many(
        self, sentences: Iterable["Sentence | str | Sequence[str]"]
    ) -> list[ParseResult]:
        """Submit a batch and gather results, index-aligned with input.

        Bit-identical to ``ParserSession.parse_many`` on the same
        sentences (the end-to-end test invariant); with ``admission=
        "reject"`` a batch larger than ``max_queue`` may overflow —
        size the queue or use blocking admission for bulk loads.
        """
        futures = [self.submit(sentence) for sentence in sentences]
        return [future.result() for future in futures]

    # -- streaming ---------------------------------------------------------

    def submit_stream(self) -> ServiceStream:
        """Open a word-at-a-time incremental parse on this service.

        Returns a :class:`ServiceStream`; each ``feed(word)`` resolves
        to the grown prefix's result, bit-identical to submitting the
        prefix as one sentence.  Streams execute in-thread on their
        owner worker's session in both workers modes (the retained
        incremental state cannot cross the process boundary).
        """
        with self._lock:
            if self._state != "running":
                raise ServiceUnavailable(
                    f"service is {self._state}, not accepting requests"
                )
            stream = ServiceStream(self, next(self._stream_ids))
            self._streams[stream.stream_id] = stream
            self.metrics.stream_opened.inc()
        return stream

    def _submit_stream_token(
        self,
        stream: ServiceStream,
        word: str,
        *,
        timeout: "float | None | object" = _UNSET,
    ) -> "Future[ParseResult]":
        # Tokenizing the single word validates it against the lexicon
        # at the door, like submit() does for whole sentences.
        sent = self.grammar.tokenize([word])
        limit = self.default_timeout if timeout is _UNSET else timeout
        now = self._clock()
        request = ParseRequest(
            sentence=sent,
            key=stream.key,
            enqueued=now,
            deadline=None if limit is None else now + limit,
            stream=stream,
            word=word,
        )
        with self._lock:
            self.metrics.submitted.inc()
            if self._state != "running":
                self.metrics.rejected.inc()
                raise ServiceUnavailable(f"service is {self._state}, not accepting requests")
            if stream.closed or stream.broken:
                self.metrics.rejected.inc()
                raise StreamError(
                    f"stream {stream.stream_id} is "
                    f"{'broken' if stream.broken else 'closed'}; open a new stream"
                )
            request.est_bytes = self._shape_bytes.get(request.key, 0)
            reason = self._admission_reason(request)
            if reason is not None:
                if self.admission == "reject":
                    self.metrics.rejected.inc()
                    raise ServiceOverloaded(
                        f"{reason}; retry later, raise the bound, or use admission='block'"
                    )
                while self._admission_reason(request) and self._state == "running":
                    self._space.wait()
                if self._state != "running":
                    self.metrics.rejected.inc()
                    raise ServiceUnavailable(f"service is {self._state}, not accepting requests")
            self._batcher.add(request)
            self._queued_bytes += request.est_bytes
            self.metrics.queued_bytes.set(self._queued_bytes)
            self.metrics.accepted.inc()
            self.metrics.stream_tokens.inc()
            stream.tokens += 1
            self.metrics.queue_depth.set(len(self._batcher))
            self._work.notify_all()
        return request.future

    def _close_stream(self, stream: ServiceStream) -> None:
        with self._lock:
            if stream.closed:
                return
            stream.closed = True
            self.metrics.stream_closed.inc()
            # Drop the retained network state now if nothing is queued
            # or executing; otherwise _stream_done does it after the
            # last in-flight token batch.
            if not stream.busy and self._batcher.pending(stream.key) == 0:
                stream.parse = None

    def _poison_stream(self, stream: ServiceStream) -> None:
        """A token failed/expired/was cancelled: the prefix chain broke."""
        with self._lock:
            if not stream.broken:
                stream.broken = True
                self.metrics.stream_failed.inc()

    def _stream_done(self, stream: ServiceStream) -> None:
        """The owner worker finished a token batch (package-private)."""
        with self._lock:
            stream.busy = False
            if (stream.closed or stream.broken) and self._batcher.pending(stream.key) == 0:
                stream.parse = None

    def _admission_reason(self, request: ParseRequest) -> "str | None":
        """Under the lock: why *request* cannot be queued now (None = admit).

        Queue depth is the hard bound; the memory bound additionally
        holds a request back while the *estimated* bytes of queued work
        would exceed ``max_memory_bytes``.  An empty queue always
        admits (a single oversized request must not deadlock), and an
        unprofiled shape (estimate 0) adds nothing to the sum.
        """
        queued = len(self._batcher)
        if queued >= self.max_queue:
            return f"queue full ({queued}/{self.max_queue} requests)"
        if (
            self.max_memory_bytes is not None
            and queued > 0
            and request.est_bytes
            and self._queued_bytes + request.est_bytes > self.max_memory_bytes
        ):
            return (
                f"queued work estimate {self._queued_bytes + request.est_bytes} bytes "
                f"exceeds max_memory_bytes={self.max_memory_bytes}"
            )
        return None

    def _note_network_bytes(self, key, nbytes: int) -> None:
        """Record a worker's measured per-shape network size (package-private)."""
        with self._lock:
            self._shape_bytes[key] = nbytes
        self.metrics.network_bytes.set(nbytes)

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict:
        """Metrics snapshot plus service state, cache and memory totals."""
        cache_bytes = sum(worker.session.cached_bytes() for worker in self._workers)
        self.metrics.template_cache_bytes.set(cache_bytes)
        snap = self.metrics.snapshot()
        caches = [worker.session.cache_info() for worker in self._workers]
        snap["service"] = {
            "state": self._state,
            "workers": len(self._workers),
            "workers_mode": self.workers_mode,
            "queued": len(self._batcher),
            "in_flight": self._in_flight,
            "streams": {
                "open": sum(
                    not (s.closed or s.broken) for s in self._streams.values()
                ),
                "broken": sum(s.broken for s in self._streams.values()),
            },
            "template_cache": {
                field: sum(info[field] for info in caches)
                for field in ("hits", "misses", "evictions", "size")
            } if caches else {},
            "memory": {
                "max_memory_bytes": self.max_memory_bytes,
                "queued_bytes": self._queued_bytes,
                "template_cache_bytes": cache_bytes,
                "shared_store_bytes": 0 if self._store is None else self._store.nbytes(),
                "shapes_profiled": len(self._shape_bytes),
            },
        }
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParseService({self.grammar.name!r}, state={self._state!r}, "
            f"workers={self.n_workers}, queued={len(self._batcher)})"
        )

    # -- the worker side (package-private) ---------------------------------

    def _next_batch(self, worker_name: "str | None" = None) -> "list[ParseRequest] | None":
        """Block until a shape-coherent batch is ready; None = exit.

        Expiry always runs before dispatch, so a request whose deadline
        passed while queued is *never* part of a returned batch.

        Stream groups are subject to affinity: the worker that pops a
        stream's first token batch becomes the stream's owner (the
        incremental state lives in its session), and the group is
        excluded from every other worker — and from the owner too while
        a token batch is in flight, so one stream's tokens execute
        strictly in order.
        """
        while True:
            expired: list[ParseRequest] = []
            batch: list[ParseRequest] | None = None
            with self._lock:
                now = self._clock()
                expired = self._batcher.expire(now)
                if expired:
                    self._release_queued(expired)
                    self._queue_shrunk()
                else:
                    exclude = self._stream_excludes(worker_name)
                    batch = self._batcher.pop_ready(
                        now, force=self._state != "running", exclude=exclude
                    )
                    if batch is not None:
                        stream = batch[0].stream
                        if stream is not None:
                            stream.owner = stream.owner or worker_name
                            stream.busy = True
                        self._in_flight += len(batch)
                        self._release_queued(batch)
                        self._queue_shrunk()
                        self.metrics.batch_size.observe(len(batch))
                        for request in batch:
                            self.metrics.queue_wait_seconds.observe(now - request.enqueued)
                    elif self._state == "stopped" and len(self._batcher) == 0:
                        return None
                    else:
                        wait = self._batcher.next_event(now, exclude=exclude)
                        # Clamp: a due-but-unready event (sub-resolution
                        # linger remainder) must not busy-spin.
                        self._work.wait(None if wait is None else max(wait, 1e-4))
                        continue
            if expired:
                self._finish_expired(expired)
                continue
            return batch

    def _stream_excludes(self, worker_name: "str | None") -> "set | None":
        """Under the lock: stream group keys this worker must not pop."""
        exclude = {
            stream.key
            for stream in self._streams.values()
            if stream.busy or (stream.owner is not None and stream.owner != worker_name)
        }
        return exclude or None

    def _finish_expired(self, requests: "list[ParseRequest]") -> None:
        """Complete dead requests outside the lock (futures run callbacks)."""
        for request in requests:
            if request.stream is not None:
                # A lost token breaks the stream's prefix chain; later
                # tokens can no longer extend a trusted state.
                self._poison_stream(request.stream)
            if request.future.cancelled():
                self.metrics.cancelled.inc()
            elif request.future.set_running_or_notify_cancel():
                request.future.set_exception(
                    DeadlineExceeded(
                        "request deadline passed while queued "
                        f"(waited {self._clock() - request.enqueued:.3f}s); never dispatched"
                    )
                )
                self.metrics.expired.inc()
            else:  # cancelled in the gap between the two checks
                self.metrics.cancelled.inc()

    def _release_queued(self, requests: "list[ParseRequest]") -> None:
        """Under the lock: drop dispatched/expired requests' byte estimates."""
        self._queued_bytes -= sum(r.est_bytes for r in requests)
        if len(self._batcher) == 0:
            self._queued_bytes = 0
        self.metrics.queued_bytes.set(self._queued_bytes)

    def _queue_shrunk(self) -> None:
        """Under the lock: refresh the gauge, wake producers and drain."""
        depth = len(self._batcher)
        self.metrics.queue_depth.set(depth)
        self._space.notify_all()
        if depth == 0:
            # Wake workers parked on _work with stream groups excluded:
            # once the queue empties they must recheck the stop
            # condition rather than sleep on a queue only the stream's
            # owner was allowed to drain.
            self._work.notify_all()
            if self._in_flight == 0:
                self._idle.notify_all()

    def _batch_done(self, n: int) -> None:
        with self._lock:
            self._in_flight -= n
            if self._in_flight == 0 and len(self._batcher) == 0:
                self._idle.notify_all()
