"""Worker threads: each owns a private :class:`ParserSession`.

Sessions are single-threaded by contract (they share scratch buffers
across the sentences they bind, and guard against concurrent entry with
:class:`~repro.errors.ConcurrentSessionUse`).  The service therefore
never shares a session: every worker constructs its own at start-up and
is the only thread that ever parses through it.  Concurrency safety is
a property of the *service*, not the session.

The loop is pull-based: a worker blocks in
``ParseService._next_batch()`` until the batcher releases a
shape-coherent batch (or the service stops, which returns ``None``),
executes the batch request by request — every sentence after the first
is a template-cache hit, since batches are single-shape — and resolves
each request's future with the :class:`ParseResult` or the engine's
exception.

Under ``workers_mode="process"`` the same thread instead *dispatches*
the batch: it exports the batch's (single) template to the service's
shared store, ships the word lists to the process pool, blocks on the
chunk, and rebinds the wire results — so admission, deadlines,
cancellation, metrics and drain behave identically in both modes while
the parsing itself runs on other cores.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.errors import StreamError
from repro.pipeline.session import ParserSession

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.serve.batcher import ParseRequest
    from repro.serve.service import ParseService


class Worker:
    """One service worker: a thread, a session, and the execute loop."""

    def __init__(self, name: str, service: "ParseService", session: ParserSession):
        self.name = name
        self.session = session
        self._service = service
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        self._thread.join(timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    # -- the loop ----------------------------------------------------------

    def _loop(self) -> None:
        while True:
            batch = self._service._next_batch(self.name)
            if batch is None:
                return
            try:
                self._execute(batch)
            finally:
                self._service._batch_done(len(batch))
                if batch[0].stream is not None:
                    self._service._stream_done(batch[0].stream)

    def _execute(self, batch: "list[ParseRequest]") -> None:
        if batch[0].stream is not None:
            # Stream tokens run in-thread in both workers modes: the
            # retained StreamingParse state lives in this worker's
            # session and cannot cross the process boundary.
            self._execute_stream(batch)
            return
        if self._service._pool is not None:
            self._execute_process(batch)
            return
        metrics = self._service.metrics
        clock = self._service._clock
        for request in batch:
            # A future cancelled after queueing but before dispatch is
            # honoured here: set_running_or_notify_cancel() refuses to
            # start it and we never parse the sentence.
            if not request.future.set_running_or_notify_cancel():
                metrics.cancelled.inc()
                continue
            try:
                result = self.session.parse(request.sentence)
            except BaseException as error:  # noqa: BLE001 - delivered via future
                request.future.set_exception(error)
                metrics.failed.inc()
            else:
                request.future.set_result(result)
                metrics.completed.inc()
                metrics.latency_seconds.observe(clock() - request.enqueued)
                # Feed the per-shape memory profile back into admission:
                # the session measured the settled network's resident
                # bytes, keyed by the same shape key batches group on.
                nbytes = result.stats.extra.get("network_bytes")
                if nbytes:
                    self._service._note_network_bytes(request.key, nbytes)

    def _execute_stream(self, batch: "list[ParseRequest]") -> None:
        """Execute one stream's token batch, strictly in order.

        Batches are single-group, so every request here belongs to one
        stream and this worker owns it (service-side affinity).  A
        failing token poisons the stream: the remaining tokens of the
        batch — and every later one — fail with ``StreamError`` rather
        than silently extending an untrusted prefix.
        """
        service = self._service
        metrics = service.metrics
        clock = service._clock
        stream = batch[0].stream
        for request in batch:
            if not request.future.set_running_or_notify_cancel():
                metrics.cancelled.inc()
                service._poison_stream(stream)
                continue
            if stream.broken:
                request.future.set_exception(
                    StreamError(
                        f"stream {stream.stream_id} is broken by an earlier "
                        "token failure; open a new stream"
                    )
                )
                metrics.failed.inc()
                continue
            try:
                if stream.parse is None:
                    stream.parse = self.session.stream()
                result = stream.parse.extend(request.word)
            except BaseException as error:  # noqa: BLE001 - delivered via future
                request.future.set_exception(error)
                metrics.failed.inc()
                service._poison_stream(stream)
            else:
                request.future.set_result(result)
                metrics.completed.inc()
                metrics.latency_seconds.observe(clock() - request.enqueued)
                # The stream's own group key doubles as its memory
                # profile: the next token's admission estimate is the
                # current prefix network's resident bytes.
                nbytes = result.stats.extra.get("network_bytes")
                if nbytes:
                    service._note_network_bytes(request.key, nbytes)

    def _execute_process(self, batch: "list[ParseRequest]") -> None:
        """Dispatch one single-shape batch to the service's process pool."""
        from repro.parallel.pool import materialize_result

        service = self._service
        metrics = service.metrics
        clock = service._clock
        live: list[ParseRequest] = []
        for request in batch:
            if request.future.set_running_or_notify_cancel():
                live.append(request)
            else:
                metrics.cancelled.inc()
        if not live:
            return
        try:
            # Batches are single-shape by construction, so one template
            # covers the batch; the export is idempotent per shape.
            template = self.session.template_for(live[0].sentence)
            handle = service._store.export(template, self.session.compiled)
            metrics.shared_store_bytes.set(service._store.nbytes())
            wires = service._pool.run_chunk(
                handle,
                [request.sentence.words for request in live],
                service._filter_limit,
            )
        except BaseException as error:  # noqa: BLE001 - delivered via futures
            for request in live:
                request.future.set_exception(error)
                metrics.failed.inc()
            return
        for request, wire in zip(live, wires, strict=True):
            result = materialize_result(template, request.sentence, wire)
            request.future.set_result(result)
            metrics.completed.inc()
            metrics.latency_seconds.observe(clock() - request.enqueued)
            nbytes = result.stats.extra.get("network_bytes")
            if nbytes:
                service._note_network_bytes(request.key, nbytes)
