"""Typed errors raised by the serving layer.

All derive from :class:`ServeError` (itself a
:class:`~repro.errors.ReproError`), so service callers can catch the
whole family or discriminate the three ways a request can fail without
ever being parsed:

* :class:`ServiceOverloaded` — admission control refused it (bounded
  queue full, ``admission="reject"``);
* :class:`DeadlineExceeded` — it was accepted but its deadline passed
  while still queued, so it was cancelled instead of dispatched;
* :class:`ServiceUnavailable` — the service was not running (not yet
  started, draining, or shut down).

Errors that happen *during* a dispatched parse are not wrapped: the
engine's own exception is delivered through the request future.
"""

from __future__ import annotations

from repro.errors import ReproError


class ServeError(ReproError):
    """Base class for all serving-layer errors."""


class ServiceOverloaded(ServeError):
    """Admission control rejected a request: the bounded queue is full."""


class DeadlineExceeded(ServeError):
    """A queued request's deadline passed before it could be dispatched."""


class ServiceUnavailable(ServeError):
    """The service is not accepting requests (not started / draining / stopped)."""
