"""Built-in service metrics: counters, gauges, and bucketed histograms.

Deliberately dependency-free (no prometheus client in the container):
three tiny thread-safe primitives plus :class:`ServiceMetrics`, the
fixed instrument set :class:`~repro.serve.service.ParseService` updates
on every request.  ``snapshot()`` returns plain nested dicts (JSON- and
test-friendly); ``render()`` formats the snapshot as the tables the
``repro serve-bench`` CLI prints.

The counters obey a conservation law the tests enforce: every submitted
request is either rejected at admission or accepted, and every accepted
request ends in exactly one of completed / failed / expired / cancelled
once the service is drained::

    submitted == accepted + rejected
    accepted  == completed + failed + expired + cancelled   (when idle)
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Default latency buckets (seconds): 0.1 ms .. 10 s, roughly log-spaced.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default batch-size buckets (requests per dispatched batch).
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A settable instantaneous value (e.g. current queue depth)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> int:
        return self._value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max and quantile estimates.

    ``buckets`` are upper bounds; observations above the last bound land
    in a +inf overflow bucket.  Quantiles are estimated as the upper
    bound of the bucket containing the requested rank — coarse, but
    monotone and cheap, which is all a serving dashboard needs.
    """

    __slots__ = ("_lock", "buckets", "counts", "count", "total", "min", "max")

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self._lock = threading.Lock()
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # last = overflow
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def quantile(self, q: float) -> float | None:
        """Upper bound of the bucket holding the q-th rank (None if empty)."""
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.buckets):
                    # Clamp to the observed max: the bucket bound can
                    # overshoot it, and max is exact.
                    return min(self.buckets[index], self.max)
                return self.max  # overflow bucket: best bound we have
        return self.max

    def summary(self) -> dict:
        with self._lock:
            mean = self.total / self.count if self.count else None
            return {
                "count": self.count,
                "sum": self.total,
                "mean": mean,
                "min": self.min,
                "max": self.max,
                "p50": self.quantile(0.50),
                "p90": self.quantile(0.90),
                "p99": self.quantile(0.99),
            }


class ServiceMetrics:
    """The fixed instrument set of a :class:`ParseService`.

    Counters (requests, by outcome):
        ``submitted``  every ``submit()`` call over a tokenizable sentence
        ``accepted``   passed admission control into the queue
        ``rejected``   refused at admission (overload or not running)
        ``completed``  dispatched and parsed successfully
        ``failed``     dispatched but the engine raised
        ``expired``    deadline passed while queued; never dispatched
        ``cancelled``  future cancelled (or abandoned by abrupt shutdown)
    Counters (streams; tokens additionally flow through the request
    counters above, so the conservation law still balances):
        ``stream_opened``  streams opened via ``submit_stream()``
        ``stream_tokens``  tokens accepted into stream queues
        ``stream_closed``  streams closed by their producer
        ``stream_failed``  streams poisoned (a token failed, expired,
                           or was cancelled; at most once per stream)
    Gauges:
        ``queue_depth``           requests currently queued (not yet dispatched)
        ``network_bytes``         resident bytes of the most recently parsed
                                  network's mutable state (packed core)
        ``template_cache_bytes``  bytes pinned by the workers' template
                                  caches, refreshed on ``snapshot()``
        ``queued_bytes``          estimated bytes of queued work (per-shape
                                  network-size estimates; admission input)
        ``shared_store_bytes``    payload bytes exported to the shared-memory
                                  template store (process workers mode; 0
                                  under thread workers)
    Histograms:
        ``batch_size``          requests per dispatched batch
        ``queue_wait_seconds``  admission -> dispatch, per request
        ``latency_seconds``     admission -> result, per completed request
    """

    def __init__(self) -> None:
        self.submitted = Counter()
        self.accepted = Counter()
        self.rejected = Counter()
        self.completed = Counter()
        self.failed = Counter()
        self.expired = Counter()
        self.cancelled = Counter()
        self.stream_opened = Counter()
        self.stream_tokens = Counter()
        self.stream_closed = Counter()
        self.stream_failed = Counter()
        self.queue_depth = Gauge()
        self.network_bytes = Gauge()
        self.template_cache_bytes = Gauge()
        self.queued_bytes = Gauge()
        self.shared_store_bytes = Gauge()
        self.batch_size = Histogram(BATCH_BUCKETS)
        self.queue_wait_seconds = Histogram(LATENCY_BUCKETS)
        self.latency_seconds = Histogram(LATENCY_BUCKETS)

    _COUNTERS = (
        "submitted", "accepted", "rejected",
        "completed", "failed", "expired", "cancelled",
        "stream_opened", "stream_tokens", "stream_closed", "stream_failed",
    )
    _GAUGES = (
        "queue_depth", "network_bytes", "template_cache_bytes",
        "queued_bytes", "shared_store_bytes",
    )
    _HISTOGRAMS = ("batch_size", "queue_wait_seconds", "latency_seconds")

    def snapshot(self) -> dict:
        """A point-in-time copy of every instrument, as plain dicts."""
        return {
            "counters": {name: getattr(self, name).value for name in self._COUNTERS},
            "gauges": {name: getattr(self, name).value for name in self._GAUGES},
            "histograms": {name: getattr(self, name).summary() for name in self._HISTOGRAMS},
        }

    def render(self, snapshot: dict | None = None) -> str:
        """Format *snapshot* (default: a fresh one) as terminal tables."""
        from repro.analysis import format_table

        snap = snapshot or self.snapshot()
        counter_rows = [[name, count] for name, count in snap["counters"].items()]
        counter_rows.append(["queue depth (now)", snap["gauges"]["queue_depth"]])
        parts = [format_table(["requests", "count"], counter_rows, title="Service metrics")]

        def fmt(value: float | None) -> str:
            return "-" if value is None else f"{value * 1000:.2f}"

        latency_rows = []
        for name in ("queue_wait_seconds", "latency_seconds"):
            s = snap["histograms"][name]
            latency_rows.append(
                [name, s["count"], fmt(s["mean"]), fmt(s["p50"]), fmt(s["p90"]),
                 fmt(s["p99"]), fmt(s["max"])]
            )
        parts.append(
            format_table(
                ["latency (ms)", "count", "mean", "p50", "p90", "p99", "max"],
                latency_rows,
            )
        )
        batch = snap["histograms"]["batch_size"]
        if batch["count"]:
            parts.append(
                f"batches: {batch['count']}  mean size {batch['mean']:.1f}  "
                f"p50 {batch['p50']:g}  max {batch['max']:g}"
            )
        gauges = snap["gauges"]
        if gauges.get("network_bytes") or gauges.get("template_cache_bytes"):
            parts.append(
                f"memory: {gauges.get('network_bytes', 0)} bytes/network  "
                f"template cache {gauges.get('template_cache_bytes', 0)} bytes  "
                f"queued est {gauges.get('queued_bytes', 0)} bytes"
            )
        return "\n".join(parts)
