"""Shape-batched request queueing: the service's dynamic batcher.

The scheduling idea is the paper's: a fixed constraint program is
fastest when work streaming through it is *shape-coherent*.  A
:class:`~repro.pipeline.template.NetworkTemplate` is keyed by a
sentence's category signature, so a batch of same-shape sentences binds
against one cached template — while an interleaved arrival stream with
more live shapes than the bounded template LRU thrashes it (every parse
rebuilds a template).  The :class:`ShapeBatcher` therefore groups
pending requests by that same shape key and releases *single-shape*
batches, flushing a group when it reaches ``max_batch_size`` or when
its oldest request has lingered ``max_linger`` seconds (the classic
dynamic-batching size-or-time rule).

Determinism contract: the batcher owns **no clock and no lock**.  Every
method takes the current time explicitly, so tests drive it with a fake
clock and no sleeps; :class:`~repro.serve.service.ParseService` calls
it only under its own mutex and passes ``time.monotonic()`` values.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Hashable

from repro.grammar.grammar import Sentence


@dataclass(slots=True)
class ParseRequest:
    """One queued sentence: payload, shape key, timing, and its future.

    A *stream token* request reuses the same record: ``stream`` points
    at the owning service stream, ``word`` is the single token being
    appended, and ``key`` is the stream's private group key (so one
    stream's tokens form one FIFO group in the batcher, never mixed
    with ordinary sentences or with other streams)."""

    sentence: Sentence
    key: Hashable  # the sentence's category signature (template cache key)
    enqueued: float  # service-clock time of admission
    deadline: float | None = None  # absolute; None = no deadline
    est_bytes: int = 0  # per-shape network-size estimate (0 = shape not yet seen)
    stream: object | None = None  # owning ServiceStream for a stream token
    word: str | None = None  # the appended token (stream requests only)
    future: Future = field(default_factory=Future)


class ShapeBatcher:
    """Groups pending requests by sentence shape; flushes by size or age.

    Not thread-safe and clock-free by design (see module docstring).

    Args:
        max_batch_size: flush a group as soon as it holds this many
            requests; also the cap on any returned batch.
        max_linger: flush a group once its oldest request has waited
            this many seconds, even if the batch is small.  ``0.0``
            means every request is dispatchable immediately.
    """

    def __init__(self, max_batch_size: int = 16, max_linger: float = 0.002):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_linger < 0:
            raise ValueError(f"max_linger must be >= 0, got {max_linger}")
        self.max_batch_size = max_batch_size
        self.max_linger = max_linger
        self._groups: OrderedDict[Hashable, deque[ParseRequest]] = OrderedDict()
        self._total = 0

    def __len__(self) -> int:
        return self._total

    @property
    def n_shapes(self) -> int:
        """Distinct shapes currently pending."""
        return len(self._groups)

    def add(self, request: ParseRequest) -> None:
        """Queue *request* under its shape key."""
        self._groups.setdefault(request.key, deque()).append(request)
        self._total += 1

    def pending(self, key: Hashable) -> int:
        """Requests currently queued under *key* (0 when absent)."""
        queue = self._groups.get(key)
        return 0 if queue is None else len(queue)

    # -- removal -----------------------------------------------------------

    def expire(self, now: float) -> list[ParseRequest]:
        """Remove and return every dead request (deadline passed or
        future already cancelled).  Called before :meth:`pop_ready`, so
        an expired request is never part of a dispatched batch."""
        removed: list[ParseRequest] = []
        for key in list(self._groups):
            queue = self._groups[key]
            alive: deque[ParseRequest] = deque()
            for request in queue:
                dead = request.future.cancelled() or (
                    request.deadline is not None and now >= request.deadline
                )
                (removed if dead else alive).append(request)
            if len(alive) != len(queue):
                if alive:
                    self._groups[key] = alive
                else:
                    del self._groups[key]
        self._total -= len(removed)
        return removed

    def pop_ready(
        self,
        now: float,
        *,
        force: bool = False,
        exclude: "set | frozenset | None" = None,
    ) -> list[ParseRequest] | None:
        """Remove and return one ready single-shape batch, or ``None``.

        A group is ready when it holds ``max_batch_size`` requests or
        its oldest request has lingered ``max_linger`` seconds (any
        non-empty group when *force*, used while draining).  Among
        ready groups the one with the oldest head request wins, so no
        shape is starved.  Batches never exceed ``max_batch_size``;
        the remainder of a larger group stays queued.

        Groups whose key is in *exclude* are never returned — the
        service excludes stream groups a worker must not touch (owned
        by another worker, or with a token batch already in flight, so
        one stream's tokens execute in strict FIFO order on one
        session).
        """
        best_key = None
        best_age = None
        for key, queue in self._groups.items():
            if exclude is not None and key in exclude:
                continue
            ready = (
                force
                or len(queue) >= self.max_batch_size
                or now - queue[0].enqueued >= self.max_linger
            )
            if ready and (best_age is None or queue[0].enqueued < best_age):
                best_key = key
                best_age = queue[0].enqueued
        if best_key is None:
            return None
        queue = self._groups[best_key]
        batch = [queue.popleft() for _ in range(min(self.max_batch_size, len(queue)))]
        if not queue:
            del self._groups[best_key]
        self._total -= len(batch)
        return batch

    def clear(self) -> list[ParseRequest]:
        """Remove and return everything (abrupt shutdown)."""
        leftovers = [r for queue in self._groups.values() for r in queue]
        self._groups.clear()
        self._total = 0
        return leftovers

    # -- scheduling --------------------------------------------------------

    def next_event(
        self, now: float, *, exclude: "set | frozenset | None" = None
    ) -> float | None:
        """Seconds until the next linger flush or deadline expiry.

        ``None`` when nothing is pending (callers wait for an ``add``
        notification instead); ``0.0`` when an event is already due.
        Groups in *exclude* contribute their deadlines (expiry is
        handled by any worker) but not their linger flushes (the
        excluded group cannot be popped by this caller anyway, and an
        already-due linger would otherwise busy-spin the wait loop).
        """
        event: float | None = None
        for key, queue in self._groups.items():
            if exclude is None or key not in exclude:
                linger_at = queue[0].enqueued + self.max_linger
                if event is None or linger_at < event:
                    event = linger_at
            for request in queue:
                if request.deadline is not None and (
                    event is None or request.deadline < event
                ):
                    event = request.deadline
        if event is None:
            return None
        return max(0.0, event - now)
