"""The serving layer: a concurrent, shape-batching parse service.

``repro.pipeline`` made single-caller batches fast (compile once, bind
cheap); ``repro.serve`` makes that shape safe and fast under *many
concurrent producers*:

* :class:`ParseService` — bounded admission queue, per-request
  deadlines, a pool of worker threads each owning a private
  :class:`~repro.pipeline.session.ParserSession`, graceful
  start/drain/shutdown;
* :class:`ShapeBatcher` — groups requests by sentence shape (the
  template cache key) and releases single-shape batches on a
  size-or-linger rule, so every batch binds one cached template;
* :class:`ServiceMetrics` — request counters by outcome, queue-depth
  gauge, batch-size and latency histograms, via ``snapshot()``;
* :class:`ServiceStream` — a server-side incremental parse opened with
  ``submit_stream()``: ``feed(word)`` queues one token through the same
  admission/deadline/metrics machinery and resolves to the grown
  prefix's result, executed word-at-a-time on the owning worker's
  session via :class:`~repro.pipeline.streaming.StreamingParse`.

See ``docs/architecture.md`` ("Serving layer") and
``benchmarks/bench_service.py`` for the throughput record.
"""

from repro.serve.batcher import ParseRequest, ShapeBatcher
from repro.serve.errors import (
    DeadlineExceeded,
    ServeError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from repro.serve.metrics import Counter, Gauge, Histogram, ServiceMetrics
from repro.serve.service import ParseService, ServiceStream
from repro.serve.worker import Worker

__all__ = [
    "ParseService",
    "ServiceStream",
    "ParseRequest",
    "ShapeBatcher",
    "Worker",
    "ServiceMetrics",
    "Counter",
    "Gauge",
    "Histogram",
    "ServeError",
    "ServiceOverloaded",
    "DeadlineExceeded",
    "ServiceUnavailable",
]
