"""Role values: the (label, modifiee) pairs that fill roles.

A role value in the paper is a label-modifiee pair such as ``SUBJ-3``
("this word functions as a SUBJ and modifies word 3") or ``ROOT-nil``.
Because words may be lexically ambiguous we additionally record the
category the role value *assumes* for its word; for unambiguous words
this collapses to the paper's representation (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.symbols import NIL_MOD, SymbolTable


@dataclass(frozen=True)
class RoleValue:
    """One role value, with all fields as interned integer codes.

    Attributes:
        pos: 1-based sentence position of the word owning the role.
        role: role-kind code (e.g. 0 = governor, 1 = needs).
        cat: category code this role value assumes for its word.
        lab: label code.
        mod: modifiee — 0 for ``nil``, else a 1-based position (never
            equal to ``pos``: "no word ever modifies itself").
    """

    pos: int
    role: int
    cat: int
    lab: int
    mod: int

    def pretty(self, symbols: SymbolTable) -> str:
        """Render as the paper writes it, e.g. ``SUBJ-3`` or ``ROOT-nil``."""
        label = symbols.labels.name(self.lab)
        modifiee = "nil" if self.mod == NIL_MOD else str(self.mod)
        return f"{label}-{modifiee}"

    def pretty_full(self, symbols: SymbolTable) -> str:
        """Verbose rendering including position/role/category."""
        role = symbols.roles.name(self.role)
        cat = symbols.categories.name(self.cat)
        return f"<word {self.pos} {role} ({cat}) {self.pretty(symbols)}>"


def enumerate_role_values(
    pos: int,
    role: int,
    categories: frozenset[int],
    allowed_labels_for,
    n_words: int,
) -> list[RoleValue]:
    """Enumerate the initial domain of one role.

    The initial domain is exhaustive "given the table T and the fact that
    no word ever modifies itself": every admissible label paired with
    every modifiee in ``{nil} U {1..n} \\ {pos}``, for every category the
    word may have.

    Args:
        pos: the word's 1-based position.
        role: the role-kind code.
        categories: category codes the word may have.
        allowed_labels_for: callable ``(role, cat) -> frozenset[int]``.
        n_words: sentence length n.

    Returns:
        The domain in deterministic order (category, label, modifiee).
    """
    mods = [NIL_MOD] + [m for m in range(1, n_words + 1) if m != pos]
    domain: list[RoleValue] = []
    for cat in sorted(categories):
        for lab in sorted(allowed_labels_for(role, cat)):
            for mod in mods:
                domain.append(RoleValue(pos=pos, role=role, cat=cat, lab=lab, mod=mod))
    return domain
