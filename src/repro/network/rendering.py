"""ASCII rendering of arc matrices, in the style of paper Figures 4 and 9."""

from __future__ import annotations

from repro.network.network import ConstraintNetwork


def render_arc_matrix(
    net: ConstraintNetwork,
    pos_a: int,
    role_a: str,
    pos_b: int,
    role_b: str,
    alive_only: bool = True,
) -> str:
    """Render the arc matrix between two roles as a 0/1 grid.

    Rows are role values of (pos_a, role_a); columns of (pos_b, role_b).
    With ``alive_only`` (the default) dead role values are omitted, which
    matches the post-propagation figures; pass False for the full
    pre-propagation grid of Figure 9.
    """
    symbols = net.grammar.symbols
    index_a = net.role_of(pos_a, role_a)
    index_b = net.role_of(pos_b, role_b)
    sl_a, sl_b = net.role_slices[index_a], net.role_slices[index_b]
    rows = [i for i in range(sl_a.start, sl_a.stop) if not alive_only or net.alive[i]]
    cols = [j for j in range(sl_b.start, sl_b.stop) if not alive_only or net.alive[j]]

    word_a = net.sentence.words[pos_a - 1]
    word_b = net.sentence.words[pos_b - 1]
    header = (
        f"arc: {word_a}[{pos_a}].{role_a} (rows) x {word_b}[{pos_b}].{role_b} (columns)"
    )
    col_names = [net.role_values[j].pretty(symbols) for j in cols]
    row_names = [net.role_values[i].pretty(symbols) for i in rows]
    width = max([len(name) for name in col_names + row_names], default=1)

    lines = [header]
    lines.append(
        " " * (width + 2) + " ".join(name.rjust(width) for name in col_names)
    )
    for i, row_name in zip(rows, row_names, strict=True):
        cells = " ".join(
            ("1" if net.matrix[i, j] else "0").rjust(width) for j in cols
        )
        lines.append(f"{row_name.rjust(width)}  {cells}")
    return "\n".join(lines)
