"""Synthetic constraint networks: hand-built domains and arc matrices.

Consistency maintenance and filtering only need the *support structure*
of a network — roles, domains, the packed matrix — not a grammar or a
sentence.  :class:`SyntheticNetwork` provides exactly that surface
(duck-typing the relevant subset of
:class:`~repro.network.network.ConstraintNetwork`), which is what the
Monotone-Circuit-Value reduction of :mod:`repro.reductions` builds on,
and what tests use to construct adversarial support patterns directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NetworkError


class SyntheticNetwork:
    """A bare support structure: roles, role values, one packed matrix.

    Args:
        domain_sizes: number of role values in each role; role values are
            numbered globally in role order.

    The matrix starts all-ones across distinct roles (and all-zero within
    a role), like a real CN before any constraint is propagated; shape it
    with :meth:`forbid` / :meth:`require_support_only_from`.
    """

    def __init__(self, domain_sizes: list[int]):
        if not domain_sizes or any(size <= 0 for size in domain_sizes):
            raise NetworkError("every role needs at least one role value")
        self.n_roles = len(domain_sizes)
        self.nv = int(sum(domain_sizes))
        starts = np.concatenate(([0], np.cumsum(domain_sizes)))
        self.role_slices = tuple(
            slice(int(starts[i]), int(starts[i + 1])) for i in range(self.n_roles)
        )
        self.role_index = np.repeat(np.arange(self.n_roles, dtype=np.int32), domain_sizes)
        self.alive = np.ones(self.nv, dtype=bool)
        self.matrix = self.role_index[:, None] != self.role_index[None, :]
        self._scratch: np.ndarray | None = None

    # -- the surface consistency/filtering needs -------------------------

    def role_onehot(self) -> np.ndarray:
        onehot = np.zeros((self.nv, self.n_roles), dtype=np.uint8)
        onehot[np.arange(self.nv), self.role_index] = 1
        return onehot

    def support_segments(self) -> tuple[np.ndarray, np.ndarray]:
        """(role ids, slice starts) for segmented support ORs.

        Domain sizes are validated positive, so every role has a
        segment (same contract as the template-backed networks).
        """
        roles = np.arange(self.n_roles, dtype=np.intp)
        starts = np.fromiter(
            (sl.start for sl in self.role_slices), dtype=np.intp, count=self.n_roles
        )
        return roles, starts

    def scratch_matrix(self) -> np.ndarray:
        """A reusable (NV, NV) bool buffer for consistency sweeps."""
        if self._scratch is None:
            self._scratch = np.empty((self.nv, self.nv), dtype=bool)
        return self._scratch

    def kill(self, indices) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) == 0:
            return
        self.alive[indices] = False
        self.matrix[indices, :] = False
        self.matrix[:, indices] = False

    def domain_size(self, role: int) -> int:
        sl = self.role_slices[role]
        return int(self.alive[sl].sum())

    def all_domains_nonempty(self) -> bool:
        return all(self.domain_size(r) > 0 for r in range(self.n_roles))

    # -- construction helpers ------------------------------------------------

    def value(self, role: int, offset: int) -> int:
        """Global index of the offset-th role value of *role*."""
        sl = self.role_slices[role]
        index = sl.start + offset
        if not sl.start <= index < sl.stop:
            raise NetworkError(f"role {role} has no value #{offset}")
        return index

    def forbid(self, a: int, b: int) -> None:
        """Zero one pair (both orientations)."""
        if self.role_index[a] == self.role_index[b]:
            raise NetworkError("cannot forbid a same-role pair (never connected)")
        self.matrix[a, b] = False
        self.matrix[b, a] = False

    def require_support_only_from(self, value: int, role: int, supporters: list[int]) -> None:
        """Make *value*'s support in *role* come only from *supporters*."""
        sl = self.role_slices[role]
        self.matrix[value, sl] = False
        self.matrix[sl, value] = False
        for supporter in supporters:
            if not sl.start <= supporter < sl.stop:
                raise NetworkError(f"supporter {supporter} is not in role {role}")
            self.matrix[value, supporter] = True
            self.matrix[supporter, value] = True
