"""Constraint-network construction and state (paper section 1.2)."""

from repro.network.network import ConstraintNetwork, RoleRef
from repro.network.rendering import render_arc_matrix
from repro.network.rolevalue import RoleValue, enumerate_role_values
from repro.network.synthetic import SyntheticNetwork

__all__ = [
    "ConstraintNetwork",
    "RoleRef",
    "RoleValue",
    "enumerate_role_values",
    "render_arc_matrix",
    "SyntheticNetwork",
]
