"""Packed-bitset layout: the pack/unpack layer of the execution core.

The MP-1 moves *bits*: 4-bit PEs, ``scanAnd``/``scanOr`` over single-bit
flags, arc matrices that are pure boolean state.  Storing every matrix
entry as a numpy byte makes the O(n^4) arc matrices 8x larger than the
information they carry; this module packs them 8-per-byte and gives the
layers above word-wide bitwise kernels.

This module owns the *layout* concerns — how a template's role-value
index space maps onto packed rows (:class:`BitLayout`), packing and
unpacking against that map, and scattering between index spaces.  The
word-level bit arithmetic itself (popcounts, AND-accumulate, segmented
reductions, row/column clears) lives in :mod:`repro.kernels.bitops`;
the layout-parameterized helpers here delegate to it, translating
``BitLayout`` fields into the plain offset arrays the kernels take.
The pre-1.8 kernel entry points (``count_ones``, ``and_accumulate``,
``or_segments``, ``segment_counts``, ``clear_rows_and_columns``) remain
importable from here as :class:`DeprecationWarning` shims.

Layout
------

A :class:`BitLayout` maps the global role-value index space ``0..NV-1``
onto a packed row of ``row_bytes`` bytes:

* each role's contiguous domain slice starts at a fresh **byte**
  boundary (``ceil(size/8)`` bytes per role), so the segmented
  OR/popcount reductions that consistency maintenance needs are plain
  ``reduceat`` calls at byte-granular segment starts — no cross-role
  masking.  Byte (not 64-bit) alignment matters: real role domains are
  4-30 values wide, and word-aligned segments would waste most of each
  word, forfeiting the memory win;
* the row is padded to a multiple of 8 bytes and stored as explicit
  little-endian ``uint64`` words (``'<u8'``), so elementwise AND/OR and
  popcounts run 64 entries per operation while ``reduceat`` runs on the
  ``uint8`` view of the same memory.  The explicit byte order keeps the
  bit<->word mapping identical on any host.

Padding and inter-role slack bits are zero in every packed array
produced here, which is what makes popcount-based delta counting exact:
``count_ones(before) - count_ones(after)`` counts real matrix entries,
never garbage bits.

All kernels are allocation-light and operate on C-contiguous arrays;
2-D inputs are treated as independent rows (axis 0 = global index,
axis 1 = packed words).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.kernels import bitops

#: Re-exported from repro.kernels.bitops (the canonical home since 1.8).
WORD_DTYPE = bitops.WORD_DTYPE
WORD_BYTES = bitops.WORD_BYTES
WORD_BITS = bitops.WORD_BITS

#: Layout-internal aliases; external word-level callers should use
#: repro.kernels.bitops directly.
_popcount_u8 = bitops.popcount_bytes
_bytes_view = bitops.bytes_view


def _deprecated_kernel(name: str) -> None:
    warnings.warn(
        f"repro.network.bitset.{name} is deprecated since 1.8: the "
        f"word-level kernels moved to repro.kernels.bitops; import "
        f"from there (layout-aware callers can keep using BitLayout "
        f"fields such as seg_byte_starts)",
        DeprecationWarning,
        stacklevel=3,
    )


class BitLayout:
    """The byte-aligned packing of one template's role-value index space.

    Attributes:
        nv: number of role values (bits carried per packed row).
        row_bytes: packed row width in bytes (multiple of 8).
        n_words: ``row_bytes // 8`` — packed row width in uint64 words.
        pbit: (NV,) packed bit position of each global index.
        pbyte / pmask8: (NV,) byte offset and in-byte mask of each index.
        seg_byte_starts: byte offsets of the non-empty role segments, in
            role order — the ``reduceat`` split points.
        full_words: frozen (n_words,) row with every *valid* bit set
            (padding and slack clear) — the packed all-alive vector.
    """

    __slots__ = (
        "nv", "row_bytes", "n_words", "pbit", "pbyte", "pmask8",
        "seg_byte_starts", "full_words",
    )

    def __init__(self, role_slices: tuple[slice, ...]):
        nv = role_slices[-1].stop if role_slices else 0
        pbit = np.empty(nv, dtype=np.intp)
        seg_starts: list[int] = []
        cursor = 0  # byte cursor: every role starts at a fresh byte
        for sl in role_slices:
            size = sl.stop - sl.start
            if size:
                seg_starts.append(cursor)
                pbit[sl] = cursor * 8 + np.arange(size)
                cursor += (size + 7) // 8
        self.nv = nv
        self.row_bytes = max(WORD_BYTES, -(-cursor // WORD_BYTES) * WORD_BYTES)
        self.n_words = self.row_bytes // WORD_BYTES
        self.pbit = pbit
        self.pbyte = pbit >> 3
        self.pmask8 = (np.uint8(1) << (pbit & 7).astype(np.uint8)).astype(np.uint8)
        self.seg_byte_starts = np.asarray(seg_starts, dtype=np.intp)
        full = pack_rows(np.ones(nv, dtype=bool), self)
        full.setflags(write=False)
        self.full_words = full

    def nbytes(self) -> int:
        """Resident size of the layout tables, for cache accounting."""
        return (
            self.pbit.nbytes + self.pbyte.nbytes + self.pmask8.nbytes
            + self.seg_byte_starts.nbytes + self.full_words.nbytes
        )

    def extend(self, role_slices: tuple[slice, ...]) -> "BitLayout":
        """The layout of an enlarged role-value index space.

        Streaming support: extending a sentence by one word both appends
        new roles *and* widens every existing role's domain (each old
        role gains the ``mod = n+1`` modifiee candidates), so the packed
        bit offsets of the prefix's values move.  The new layout is
        therefore built from scratch; what carries over is the *index
        map* between the two spaces, and :func:`embed_rows` performs the
        scatter.  The only invariant checked here is that the space
        grew — a streaming step never shrinks an index space.
        """
        layout = BitLayout(role_slices)
        if layout.nv < self.nv:
            raise ValueError(
                f"extended layout has {layout.nv} role values, fewer than "
                f"the {self.nv} it extends"
            )
        return layout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BitLayout(nv={self.nv}, row_bytes={self.row_bytes}, "
            f"segments={len(self.seg_byte_starts)})"
        )


# -- pack / unpack -----------------------------------------------------------

def pack_rows(bools: np.ndarray, layout: BitLayout) -> np.ndarray:
    """Pack (..., NV) booleans into (..., n_words) little-endian words."""
    bools = np.asarray(bools, dtype=bool)
    padded = np.zeros(bools.shape[:-1] + (layout.row_bytes * 8,), dtype=bool)
    padded[..., layout.pbit] = bools
    packed = np.packbits(padded, axis=-1, bitorder="little")
    return packed.view(WORD_DTYPE)


def unpack_rows(words: np.ndarray, layout: BitLayout) -> np.ndarray:
    """Unpack (..., n_words) words back into (..., NV) booleans."""
    bits = np.unpackbits(_bytes_view(words), axis=-1, bitorder="little")
    return bits[..., layout.pbit].astype(bool)


def get_bit(row_words: np.ndarray, index: int, layout: BitLayout) -> bool:
    """One bit of a packed row, without unpacking it."""
    return bool(_bytes_view(row_words)[..., layout.pbyte[index]] & layout.pmask8[index])


# -- counting (deprecated shims; see repro.kernels.bitops) -------------------

def count_ones(words: np.ndarray) -> int:
    """Deprecated: use :func:`repro.kernels.bitops.count_ones`."""
    _deprecated_kernel("count_ones")
    return bitops.count_ones(words)


def segment_counts(row_words: np.ndarray, layout: BitLayout) -> np.ndarray:
    """Deprecated: use :func:`repro.kernels.bitops.segment_counts`
    with ``layout.seg_byte_starts``."""
    _deprecated_kernel("segment_counts")
    return bitops.segment_counts(row_words, layout.seg_byte_starts)


def or_segments(matrix_words: np.ndarray, layout: BitLayout) -> np.ndarray:
    """Deprecated: use :func:`repro.kernels.bitops.or_segments`
    with ``layout.seg_byte_starts``."""
    _deprecated_kernel("or_segments")
    return bitops.or_segments(matrix_words, layout.seg_byte_starts)


def embed_rows(
    words: np.ndarray,
    idx_map: np.ndarray,
    old_layout: BitLayout,
    new_layout: BitLayout,
) -> np.ndarray:
    """Scatter a packed array into a larger index space and repack.

    ``idx_map`` maps each old global index to its new global index (an
    order-preserving injection: extending a sentence interleaves fresh
    role values between the surviving ones, so old bit offsets do not
    survive).  1-D inputs (an alive row) scatter along their only axis;
    2-D inputs (a matrix, old shape ``(nv_old, n_words_old)``) scatter
    along both, via ``np.ix_``.  Unmapped positions are zero, so the
    result keeps the zero-padding invariant popcount deltas rely on.
    """
    bools = unpack_rows(words, old_layout)
    if bools.ndim == 1:
        out = np.zeros(new_layout.nv, dtype=bool)
        out[idx_map] = bools
    else:
        out = np.zeros((new_layout.nv, new_layout.nv), dtype=bool)
        out[np.ix_(idx_map, idx_map)] = bools
    return pack_rows(out, new_layout)


# -- layout-parameterized mutation helpers -----------------------------------

def member_mask(indices: np.ndarray, layout: BitLayout) -> np.ndarray:
    """A packed (n_words,) row with exactly the given indices' bits set."""
    return bitops.scatter_mask(
        layout.pbyte[indices], layout.pmask8[indices], layout.row_bytes
    )


def keep_mask(indices: np.ndarray, layout: BitLayout) -> np.ndarray:
    """The packed complement of :func:`member_mask`: every *valid* bit
    except *indices* (padding stays clear, preserving the invariant)."""
    return member_mask(indices, layout) ^ layout.full_words


def and_accumulate(target_words: np.ndarray, mask_words: np.ndarray) -> int:
    """Deprecated: use :func:`repro.kernels.bitops.and_accumulate`."""
    _deprecated_kernel("and_accumulate")
    return bitops.and_accumulate(target_words, mask_words)


def clear_rows_and_columns(
    alive_words: np.ndarray,
    matrix_words: np.ndarray,
    indices: np.ndarray,
    layout: BitLayout,
) -> None:
    """Deprecated: use :func:`repro.kernels.bitops.clear_rows_and_columns`
    with a precomputed keep mask (:func:`keep_mask`)."""
    _deprecated_kernel("clear_rows_and_columns")
    bitops.clear_rows_and_columns(
        alive_words, matrix_words, indices, keep_mask(indices, layout)
    )
