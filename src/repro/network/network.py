"""The constraint network (CN): nodes, role-value domains and arc matrices.

Representation
--------------

All role values in the sentence are flattened into one global index space
``0..NV-1``; each role owns a contiguous slice of it.  The network then
consists of:

* five integer field arrays (``pos``, ``role`` kind, ``cat``, ``lab``,
  ``mod``) of length ``NV`` — the vector backend's evaluation inputs;
* a packed ``alive`` bit vector (``alive_bits``, one uint64 row) — the
  current domains;
* one bit matrix ``matrix_bits`` of shape ``(NV, n_words)`` packing
  *every* arc matrix along the second axis: the block between roles i
  and j is the rows of i's slice restricted to j's byte-aligned bit
  segment (see :mod:`repro.network.bitset`).  Same-role blocks are
  identically zero and excluded from support checks.

This packed layout is the numpy analogue of the paper's "zero the rows or
columns ... rather than reducing their dimensions" (MasPar design
decision 4): domains never shrink physically, they are masked — and, as
on the MP-1 itself, the mask is bits, not bytes.

Packed vs boolean views
-----------------------

The packed arrays are the network's truth.  ``alive`` / ``matrix`` are
*properties*: in packed mode they return cached, **frozen** boolean
expansions (an engine bug that writes through them fails loudly instead
of silently desynchronizing the bits).  Engines that genuinely mutate
byte-per-bool state — the serial oracle, the PRAM/mesh/MasPar machine
read-backs — call :meth:`materialize_bool` first, which flips the
network into boolean mode (writable arrays are then authoritative);
:meth:`repack` folds the booleans back into bits.  Every query and
mutation helper dispatches on the mode, so both views satisfy one
contract.

Category coherence
------------------

For lexically ambiguous words, role values of the *same word* that assume
*different* categories are marked incompatible at construction time, so a
parse cannot mix "program the noun" with "program the verb".  For
unambiguous words this is a no-op and the network matches the paper's
figures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import NetworkError
from repro.grammar.grammar import CDGGrammar, Sentence
from repro.kernels import bitops
from repro.kernels.backend import KernelBackend, default_backend
from repro.network import bitset
from repro.network.bitset import BitLayout
from repro.network.rolevalue import RoleValue

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.pipeline.template import NetworkTemplate


@dataclass(frozen=True)
class RoleRef:
    """A (word position, role kind) pair naming one role in the CN."""

    pos: int
    role: int

    def index(self, n_roles: int) -> int:
        return (self.pos - 1) * n_roles + self.role


class ConstraintNetwork:
    """A CN for one sentence under one grammar.

    The shape-dependent half of construction (role-value enumeration,
    field arrays, the O(NV^2) base masks) lives in
    :class:`repro.pipeline.template.NetworkTemplate`; ``__init__``
    builds a throwaway template and binds it, while
    :class:`~repro.pipeline.session.ParserSession` reuses cached
    templates so repeated shapes skip that work entirely.  Both paths
    produce bit-identical networks.

    Attributes:
        grammar: the grammar the network was built from.
        sentence: the tokenized input.
        template: the :class:`NetworkTemplate` this network was bound
            from (shared, immutable).
        role_values: all role values, in global-index order.
        bit_layout: the template's :class:`BitLayout`.
        alive_bits: packed (n_words,) alive vector — the current domains.
        matrix_bits: packed (NV, n_words) arc matrices; symmetric as a
            bit relation.
        alive / matrix: boolean views (properties; see module docstring).
    """

    #: Set by NetworkTemplate.fill; declared for type checkers.
    template: "NetworkTemplate"
    role_values: tuple[RoleValue, ...]
    role_slices: tuple[slice, ...]
    bit_layout: BitLayout
    alive_bits: np.ndarray
    matrix_bits: np.ndarray

    #: Mode state (set per instance by NetworkTemplate.fill; class-level
    #: defaults keep partially-constructed instances safe).
    _bool_mode: bool = False
    _alive_cache: "np.ndarray | None" = None
    _matrix_cache: "np.ndarray | None" = None

    #: Kernel backend the packed paths run on; None means "resolve the
    #: process default" (REPRO_KERNEL_BACKEND, else packed).  Stamped by
    #: NetworkTemplate.fill when a session threads an explicit backend.
    kernel_backend: "KernelBackend | None" = None

    def kernels(self) -> KernelBackend:
        """The kernel backend this network's packed operations run on."""
        return self.kernel_backend or default_backend()

    def __init__(self, grammar: CDGGrammar, sentence: Sentence):
        from repro.pipeline.template import NetworkTemplate

        NetworkTemplate.build(grammar, sentence.category_sets).fill(self, sentence)

    # -- packed/boolean mode -----------------------------------------------

    @property
    def packed_active(self) -> bool:
        """True while the packed arrays are authoritative."""
        return not self._bool_mode

    @property
    def alive(self) -> np.ndarray:
        """(NV,) bool domains: frozen expansion (packed) or writable truth."""
        if self._bool_mode:
            return self._alive_cache
        if self._alive_cache is None:
            view = bitset.unpack_rows(self.alive_bits, self.bit_layout)
            view.setflags(write=False)
            self._alive_cache = view
        return self._alive_cache

    @property
    def matrix(self) -> np.ndarray:
        """(NV, NV) bool arc matrices: frozen expansion or writable truth."""
        if self._bool_mode:
            return self._matrix_cache
        if self._matrix_cache is None:
            view = bitset.unpack_rows(self.matrix_bits, self.bit_layout)
            view.setflags(write=False)
            self._matrix_cache = view
        return self._matrix_cache

    def _invalidate_views(self) -> None:
        if not self._bool_mode:
            self._alive_cache = None
            self._matrix_cache = None

    def materialize_bool(self) -> None:
        """Switch to boolean mode: writable byte-per-bool state.

        For the engines whose faithfulness *is* byte-level mutation
        (the serial oracle's explicit loops, the simulated machines'
        host read-backs).  Idempotent.
        """
        if self._bool_mode:
            return
        self._alive_cache = bitset.unpack_rows(self.alive_bits, self.bit_layout)
        self._matrix_cache = bitset.unpack_rows(self.matrix_bits, self.bit_layout)
        self._bool_mode = True

    def repack(self) -> None:
        """Fold boolean-mode state back into the packed arrays.  Idempotent."""
        if not self._bool_mode:
            return
        self.alive_bits = bitset.pack_rows(self._alive_cache, self.bit_layout)
        self.matrix_bits = bitset.pack_rows(self._matrix_cache, self.bit_layout)
        self._bool_mode = False
        self._alive_cache = None
        self._matrix_cache = None

    def state_nbytes(self) -> int:
        """Bytes held by the per-sentence mutable state, as represented now."""
        if self._bool_mode:
            return self._alive_cache.nbytes + self._matrix_cache.nbytes
        return self.alive_bits.nbytes + self.matrix_bits.nbytes

    # -- streaming ---------------------------------------------------------

    @classmethod
    def extend_from(
        cls,
        prev: "ConstraintNetwork",
        template: "NetworkTemplate",
        sentence: Sentence,
    ) -> "ConstraintNetwork":
        """A fresh (n+1)-word network carrying over *prev*'s eliminations.

        *template* must have been built by ``prev.template.extend(...)``
        (it carries the old-to-new index map).  The result is bound
        fresh from the extended template — every new role value alive,
        the matrix at the extended base — then *prev*'s packed state is
        scattered in: surviving alive bits replace the old values'
        fresh ones, the old-by-old matrix block is replaced by *prev*'s
        bits, and the rows/columns of old values *prev* had killed are
        zeroed (design decision 4 carries across the extension).  The
        predecessor is only read, never mutated, so its frozen prefix
        state stays valid for the caller.
        """
        if not prev.packed_active:
            raise NetworkError(
                "extend_from requires the predecessor in packed mode; repack() first"
            )
        idx_map = template.prefix_map
        if idx_map is None or template.category_sets[:-1] != prev.template.category_sets:
            raise NetworkError(
                "template was not extended from the predecessor network's shape"
            )
        network = template.bind(sentence)
        layout = template.bit_layout
        old_layout = prev.bit_layout
        # Alive: old survivors scattered in, every new value alive.
        embedded_alive = bitset.embed_rows(prev.alive_bits, idx_map, old_layout, layout)
        network.alive_bits = embedded_alive | bitset.member_mask(
            template.prefix_new, layout
        )
        # Matrix: keep the fresh base everywhere a new value is involved,
        # replace the old-by-old block with the predecessor's bits.
        embedded_matrix = bitset.embed_rows(prev.matrix_bits, idx_map, old_layout, layout)
        keep_new = ~bitset.member_mask(idx_map, layout)
        network.matrix_bits[idx_map] = (
            network.matrix_bits[idx_map] & keep_new
        ) | embedded_matrix[idx_map]
        # Old values the predecessor eliminated stay eliminated: zero
        # their fresh rows/columns against the new word's values too.
        dead = idx_map[~bitset.unpack_rows(prev.alive_bits, old_layout)]
        if dead.size:
            bitops.clear_rows_and_columns(
                network.alive_bits,
                network.matrix_bits,
                dead,
                bitset.keep_mask(dead, layout),
            )
        network._invalidate_views()
        return network

    # -- copying -----------------------------------------------------------

    def clone(self) -> "ConstraintNetwork":
        """Deep copy of the mutable state (alive vector and matrices)."""
        other = object.__new__(ConstraintNetwork)
        other.__dict__.update(self.__dict__)
        other.alive_bits = self.alive_bits.copy()
        other.matrix_bits = self.matrix_bits.copy()
        if self._bool_mode:
            other._alive_cache = self._alive_cache.copy()
            other._matrix_cache = self._matrix_cache.copy()
        else:
            other._alive_cache = None
            other._matrix_cache = None
        return other

    # -- field-array views ---------------------------------------------------

    def unary_fields(self) -> dict[str, np.ndarray]:
        """Field arrays shaped (NV,) for unary vector evaluation."""
        return {
            "pos": self.pos,
            "role": self.role_kind,
            "cat": self.cat,
            "lab": self.lab,
            "mod": self.mod,
        }

    def pair_fields(self) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Field arrays shaped (NV, 1) and (1, NV) for binary evaluation."""
        x_fields = {k: v[:, None] for k, v in self.unary_fields().items()}
        y_fields = {k: v[None, :] for k, v in self.unary_fields().items()}
        return x_fields, y_fields

    # -- role/domain queries ---------------------------------------------------

    def role_ref(self, index: int) -> RoleRef:
        pos = index // self.n_roles_per_word + 1
        role = index % self.n_roles_per_word
        return RoleRef(pos=pos, role=role)

    def role_of(self, pos: int, role_name: str) -> int:
        """Global role index for (1-based position, role-kind name)."""
        if not 1 <= pos <= self.n_words:
            raise NetworkError(f"position {pos} out of range 1..{self.n_words}")
        role = self.grammar.symbols.roles.code(role_name)
        return (pos - 1) * self.n_roles_per_word + role

    def domain_indices(self, role_index: int) -> np.ndarray:
        """Global indices of the *alive* role values of one role."""
        sl = self.role_slices[role_index]
        return np.nonzero(self.alive[sl])[0] + sl.start

    def domain(self, pos: int, role_name: str) -> set[str]:
        """The alive domain rendered as the paper writes it: {"SUBJ-3", ...}.

        Lexically ambiguous words may carry the same label-modifiee pair
        under several categories; the rendering deduplicates, matching the
        figures.
        """
        indices = self.domain_indices(self.role_of(pos, role_name))
        return {self.role_values[i].pretty(self.grammar.symbols) for i in indices}

    def domain_size(self, role_index: int) -> int:
        sl = self.role_slices[role_index]
        return int(self.alive[sl].sum())

    def domain_sizes(self) -> np.ndarray:
        """Alive count of every role in one pass.

        Packed mode: byte popcounts reduced at the role segment starts.
        Boolean mode: role slices tile ``[0, NV)`` contiguously, so
        summing ``alive`` at the starts of the non-empty slices yields
        the per-role counts.  Structurally empty roles stay at zero.
        """
        counts = np.zeros(self.n_roles, dtype=np.int64)
        template = self.template
        if not template.nonempty_roles.size:
            return counts
        if self._bool_mode:
            counts[template.nonempty_roles] = np.add.reduceat(
                self.alive, template.nonempty_starts, dtype=np.int64
            )
        else:
            counts[template.nonempty_roles] = bitops.segment_counts(
                self.alive_bits, self.bit_layout.seg_byte_starts
            )
        return counts

    def all_domains_nonempty(self) -> bool:
        return bool(self.domain_sizes().all())

    def empty_roles(self) -> list[RoleRef]:
        return [self.role_ref(int(r)) for r in np.nonzero(self.domain_sizes() == 0)[0]]

    def is_ambiguous(self) -> bool:
        """True when some role still holds more than one role value."""
        return bool((self.domain_sizes() > 1).any())

    def alive_count(self) -> int:
        if self._bool_mode:
            return int(self._alive_cache.sum())
        return self.kernels().count_ones(self.alive_bits)

    # -- arc queries -------------------------------------------------------------

    def arc_matrix(self, role_a: int, role_b: int) -> np.ndarray:
        """A copy of the arc matrix block between two roles (rows: role_a)."""
        if role_a == role_b:
            raise NetworkError("no arc connects a role to itself")
        sa, sb = self.role_slices[role_a], self.role_slices[role_b]
        return self.matrix[sa, sb].copy()

    def entry(self, a: int, b: int) -> bool:
        """The packed-matrix entry for a pair of global role-value indices."""
        if self._bool_mode:
            return bool(self._matrix_cache[a, b])
        return bitset.get_bit(self.matrix_bits[a], b, self.bit_layout)

    def role_onehot(self) -> np.ndarray:
        """(NV, n_roles) one-hot membership matrix, used for support sums."""
        onehot = np.zeros((self.nv, self.n_roles), dtype=np.uint8)
        onehot[np.arange(self.nv), self.role_index] = 1
        return onehot

    def support_segments(self) -> tuple[np.ndarray, np.ndarray]:
        """(role ids, slice starts) of the non-empty roles, for reduceat.

        Shared with :func:`repro.propagation.consistency.unsupported_vector`;
        precomputed on the template.
        """
        template = self.template
        return template.nonempty_roles, template.nonempty_starts

    def scratch_matrix(self) -> np.ndarray:
        """A reusable (NV, NV) bool buffer (template-owned, not state)."""
        return self.template.scratch_matrix()

    def scratch_bits(self) -> np.ndarray:
        """A reusable (NV, n_words) packed buffer (template-owned)."""
        return self.template.scratch_bits()

    # -- mutation helpers ----------------------------------------------------------

    def kill(self, indices: np.ndarray) -> None:
        """Remove role values and zero their rows/columns (design decision 4)."""
        if len(indices) == 0:
            return
        if self._bool_mode:
            self._alive_cache[indices] = False
            self._matrix_cache[indices, :] = False
            self._matrix_cache[:, indices] = False
            return
        bitops.clear_rows_and_columns(
            self.alive_bits,
            self.matrix_bits,
            indices,
            bitset.keep_mask(indices, self.bit_layout),
        )
        self._invalidate_views()

    def apply_pair_mask(self, permitted: np.ndarray, *, presymmetrized: bool = False) -> int:
        """AND a (NV, NV) permitted mask into the packed matrices.

        The mask is applied in both orientations, since a binary
        constraint must hold however the pair is bound to (x, y);
        callers holding an already-symmetrized mask pass
        ``presymmetrized=True`` to skip the transpose AND.  Packed-mode
        callers holding a packed mask (the template's cached masks)
        should use :meth:`apply_pair_mask_bits` directly.

        Returns:
            Number of matrix entries newly zeroed, counted from the
            mask delta in a single pass rather than summing the matrix
            twice.
        """
        if permitted.shape != (self.nv, self.nv):
            raise NetworkError(
                f"pair mask shape {permitted.shape} does not match NV={self.nv}"
            )
        both = permitted if presymmetrized else permitted & permitted.T
        if self._bool_mode:
            m = self._matrix_cache
            newly_zeroed = int(np.count_nonzero(m & ~both))
            m &= both
            return newly_zeroed
        return self.apply_pair_mask_bits(bitset.pack_rows(both, self.bit_layout))

    def apply_pair_mask_bits(self, permitted_bits: np.ndarray) -> int:
        """AND a packed (NV, n_words) permitted mask into the matrices.

        The packed fast path of :meth:`apply_pair_mask`: one word-wide
        AND, with the newly-zeroed count recovered by popcount delta.
        Requires packed mode (boolean-mode engines hold boolean masks).
        """
        if self._bool_mode:
            raise NetworkError("apply_pair_mask_bits on a boolean-mode network")
        if permitted_bits.shape != self.matrix_bits.shape:
            raise NetworkError(
                f"packed pair mask shape {permitted_bits.shape} does not match "
                f"{self.matrix_bits.shape}"
            )
        newly_zeroed = self.kernels().and_accumulate(self.matrix_bits, permitted_bits)
        self._invalidate_views()
        return newly_zeroed

    # -- rendering -------------------------------------------------------------------

    def describe(self) -> str:
        """Multi-line summary of the CN state (one line per role)."""
        lines = [
            f"CN for {' '.join(self.sentence.words)!r}: n={self.n_words}, "
            f"NV={self.nv}, alive={self.alive_count()}"
        ]
        for pos in range(1, self.n_words + 1):
            word = self.sentence.words[pos - 1]
            for role in range(self.n_roles_per_word):
                role_name = self.grammar.symbols.roles.name(role)
                values = sorted(self.domain(pos, role_name))
                lines.append(f"  {word} [{pos}] {role_name}: {{{', '.join(values)}}}")
        return "\n".join(lines)
