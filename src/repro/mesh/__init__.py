"""2-D mesh substrate and CDG engine (Figure 8's mesh row)."""

from repro.mesh.engine import MeshEngine
from repro.mesh.machine import MeshMachine, MeshStats

__all__ = ["MeshEngine", "MeshMachine", "MeshStats"]
