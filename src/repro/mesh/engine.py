"""CDG parsing on a 2-D mesh — Figure 8's "2D Mesh / Cellular Automata" row.

Figure 8 lists CDG parsing on a 2D mesh at **O(n^2) PEs, O(k + n^2)
time**.  This engine realizes that design on the
:class:`~repro.mesh.machine.MeshMachine` substrate:

* the mesh is R x R cells, R = q*n roles — O(n^2) processors;
* cell (i, j) owns the *entire arc matrix* between roles i and j
  (a D x D block, D = O(n) role values), so each constraint is applied
  by every cell serially scanning its local block: O(D^2) = O(n^2) local
  work per constraint — the n^2 term of the running time;
* consistency maintenance ORs each block's rows locally, ANDs across
  the mesh row by shift-based reduce-broadcast (O(R) = O(n) single-hop
  communication steps), and redistributes the updated liveness down the
  columns from the diagonal.

Time therefore measures as O(k * n^2) local work per cell plus O(k * n)
communication — quadratic in n for the grammar-constant k, matching the
figure's row (which absorbs k the same way).  The engine settles every
network bit-identically to the other four; the Figure-8 bench reports
its measured exponent.
"""

from __future__ import annotations

import numpy as np

from repro.constraints import VectorEnv
from repro.engines.base import EngineStats, ParserEngine, TraceHook
from repro.mesh.machine import MeshMachine
from repro.network.network import ConstraintNetwork
from repro.pipeline.compiled import CompiledGrammar, compile_grammar
from repro.propagation.filtering import filter_network

#: ALU-op charge per compiled-constraint evaluation (as in the PARSEC kernels).
CONSTRAINT_OPS = 24


class MeshEngine(ParserEngine):
    """CDG parsing on an R x R mesh of arc-matrix cells."""

    name = "mesh"

    def run(
        self,
        network: ConstraintNetwork,
        *,
        compiled: CompiledGrammar | None = None,
        filter_limit: int | None = None,
        trace: TraceHook | None = None,
    ) -> EngineStats:
        compiled = compiled or compile_grammar(network.grammar)
        stats = EngineStats()
        R = network.n_roles
        sizes = [sl.stop - sl.start for sl in network.role_slices]
        D = max(sizes)
        mesh = MeshMachine(R, R)

        # Per-role padded field tables (role, D).
        def padded(field: np.ndarray, fill: int) -> np.ndarray:
            table = np.full((R, D), fill, dtype=np.int32)
            for role, sl in enumerate(network.role_slices):
                table[role, : sizes[role]] = field[sl]
            return table

        fields = {
            "pos": padded(network.pos, 0),
            "role": padded(network.role_kind, -1),
            "cat": padded(network.cat, -1),
            "lab": padded(network.lab, -1),
            "mod": padded(network.mod, -1),
        }
        valid = np.zeros((R, D), dtype=bool)
        for role, size in enumerate(sizes):
            valid[role, :size] = True

        # Cell-local views: row role values vary along axis 2, column role
        # values along axis 3 of the (R, R, D, D) block plane.
        row_fields = {k: v[:, None, :, None] for k, v in fields.items()}
        col_fields = {k: v[None, :, None, :] for k, v in fields.items()}
        row_env = VectorEnv(x={k: v[:, None, :] for k, v in fields.items()}, y=None, canbe=network.canbe_array)

        blocks = mesh.alloc("blocks", tail=(D, D), dtype=bool)
        row_alive = mesh.alloc("row_alive", tail=(D,), dtype=bool)
        col_alive = mesh.alloc("col_alive", tail=(D,), dtype=bool)

        def initialize(blocks, row_alive, col_alive):
            cross_role = ~np.eye(R, dtype=bool)
            blocks[:] = cross_role[:, :, None, None]
            blocks &= valid[:, None, :, None] & valid[None, :, None, :]
            same_word = fields["pos"][:, 0][:, None] == fields["pos"][:, 0][None, :]
            cat_clash = row_fields["cat"] != col_fields["cat"]
            blocks &= ~(same_word[:, :, None, None] & cat_clash)
            row_alive[:] = valid[:, None, :]
            col_alive[:] = valid[None, :, :]

        mesh.compute(initialize, "blocks", "row_alive", "col_alive", work_per_cell=D * D)

        def sync(event: str) -> None:
            if trace:
                self._read_back(network, mesh, sizes)
                trace(event, network)

        # -- unary constraints: purely cell-local --------------------------
        for constraint in compiled.unary:
            permitted = constraint.vector(row_env)  # (R, 1, D) broadcast over roles
            permitted = np.broadcast_to(permitted, (R, R, D))

            def apply_unary(blocks, row_alive, col_alive, permitted=permitted):
                row_alive &= permitted.transpose(0, 1, 2)[:, :, :]
                col_alive &= permitted.transpose(1, 0, 2)[:, :, :]
                blocks &= row_alive[:, :, :, None]
                blocks &= col_alive[:, :, None, :]

            mesh.compute(
                apply_unary,
                "blocks",
                "row_alive",
                "col_alive",
                work_per_cell=CONSTRAINT_OPS * D + 2 * D * D,
            )
            stats.unary_checks += R * R * D
            stats.role_values_killed = int(valid.sum()) - int(
                mesh.plane("row_alive")[:, 0, :].sum()
            )
            sync(f"unary:{constraint.name}")
        sync("unary-done")

        # -- binary constraints + consistency ------------------------------
        pair_env = VectorEnv(x=row_fields, y=col_fields, canbe=network.canbe_array)
        swap_env = VectorEnv(x=col_fields, y=row_fields, canbe=network.canbe_array)
        for constraint in compiled.binary:
            permitted = constraint.vector(pair_env) & constraint.vector(swap_env)

            def apply_binary(blocks, permitted=permitted):
                blocks &= permitted

            before = int(mesh.plane("blocks").sum())
            mesh.compute(
                apply_binary, "blocks", work_per_cell=2 * CONSTRAINT_OPS * D * D
            )
            stats.pair_checks += R * R * D * D
            stats.matrix_entries_zeroed += before - int(mesh.plane("blocks").sum())
            sync(f"binary:{constraint.name}")

            killed = self._consistency(mesh, R, D)
            stats.role_values_killed += killed
            stats.consistency_passes += 1
            sync(f"consistency:{constraint.name}")

        # -- filtering -------------------------------------------------------
        def counting_step(_net: ConstraintNetwork) -> int:
            killed = self._consistency(mesh, R, D)
            stats.role_values_killed += killed
            stats.consistency_passes += 1
            return killed

        stats.filtering_iterations = filter_network(network, counting_step, limit=filter_limit)

        self._read_back(network, mesh, sizes)
        if trace:
            trace("filtering-done", network)

        stats.processors = mesh.cells
        stats.parallel_steps = mesh.stats.total_steps
        stats.extra.update(
            {
                "cells": mesh.cells,
                "compute_steps": mesh.stats.compute_steps,
                "comm_steps": mesh.stats.comm_steps,
                "local_work": mesh.stats.local_work,
                "mesh_time": mesh.stats.local_work // mesh.cells + mesh.stats.comm_steps,
                "block_size": D,
            }
        )
        return stats

    # -- pieces ---------------------------------------------------------------

    @staticmethod
    def _consistency(mesh: MeshMachine, R: int, D: int) -> int:
        """One consistency step: local row-OR, mesh-row AND, column redistribute."""
        blocks = mesh.plane("blocks")
        row_alive = mesh.plane("row_alive")
        col_alive = mesh.plane("col_alive")
        before = int(row_alive[:, 0, :].sum())

        # Local: does role i's value d keep a partner in role j?
        local_or = np.empty((R, R, D), dtype=bool)

        def local_support(blocks, local_or=local_or):
            local_or[:] = blocks.any(axis=3)
            # Self-cells feed the neutral element into the row AND.
            local_or[np.arange(R), np.arange(R)] = True

        mesh.compute(local_support, "blocks", work_per_cell=D * D)

        # Across the mesh row: AND over all arcs incident to role i.
        supported = mesh.row_reduce_broadcast(local_or, "and")  # (R, R, D)

        def apply_kills(blocks, row_alive, col_alive, supported=supported):
            row_alive &= supported

        mesh.compute(apply_kills, "blocks", "row_alive", "col_alive", work_per_cell=D)

        # Redistribute updated liveness down the columns from the diagonal.
        diagonal = np.zeros((R, R, D), dtype=bool)
        diagonal[np.arange(R), np.arange(R)] = mesh.plane("row_alive")[np.arange(R), np.arange(R)]
        new_col_alive = mesh.col_reduce_broadcast(diagonal, "or")

        def zero_dead(blocks, row_alive, col_alive, new_col_alive=new_col_alive):
            col_alive &= new_col_alive
            blocks &= row_alive[:, :, :, None]
            blocks &= col_alive[:, :, None, :]

        mesh.compute(zero_dead, "blocks", "row_alive", "col_alive", work_per_cell=2 * D * D)

        return before - int(mesh.plane("row_alive")[:, 0, :].sum())

    @staticmethod
    def _read_back(network: ConstraintNetwork, mesh: MeshMachine, sizes: list[int]) -> None:
        # The readout writes the boolean view in place; repack afterward
        # so the caller gets the network back in packed mode.
        network.materialize_bool()
        try:
            blocks = mesh.plane("blocks")
            row_alive = mesh.plane("row_alive")
            for role, sl in enumerate(network.role_slices):
                network.alive[sl] = row_alive[role, 0, : sizes[role]]
            matrix = np.zeros_like(network.matrix)
            for i, sl_i in enumerate(network.role_slices):
                for j, sl_j in enumerate(network.role_slices):
                    if i == j:
                        continue
                    matrix[sl_i, sl_j] = blocks[i, j, : sizes[i], : sizes[j]]
            network.matrix[:] = matrix
        finally:
            network.repack()
