"""A 2-D processor mesh with neighbour-only communication.

The substrate for Figure 8's "2D Mesh" rows: an R x C grid of cells,
each with local state, executing *synchronous macro steps*.  A macro
step is either local compute (every cell applies the same function to
its state) or a single-hop shift (every cell passes a message to the
neighbour in one direction).  The step counter separates compute from
communication so the CDG mesh engine can report both against the
paper's O(k + n^2) row.

Row/column reductions are built from shifts the standard way: R - 1
leftward (upward) combine-shifts accumulate a row (column) reduction
into column (row) 0, and the same number of rightward shifts broadcast
it back — 2(R - 1) communication steps, each carrying one fixed-size
message per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import MachineError


@dataclass
class MeshStats:
    compute_steps: int = 0
    comm_steps: int = 0
    local_work: int = 0  # total element operations across cells

    @property
    def total_steps(self) -> int:
        return self.compute_steps + self.comm_steps


class MeshMachine:
    """An R x C mesh of cells holding numpy-array state planes.

    State *planes* are named arrays of shape (R, C, ...) — one slot per
    cell.  All operations are lock-step across cells.
    """

    def __init__(self, rows: int, cols: int):
        if rows <= 0 or cols <= 0:
            raise MachineError(f"mesh needs positive dimensions, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.stats = MeshStats()
        self._planes: dict[str, np.ndarray] = {}

    @property
    def cells(self) -> int:
        return self.rows * self.cols

    # -- state ------------------------------------------------------------

    def alloc(self, name: str, tail: tuple[int, ...] = (), dtype=np.int64, fill=0) -> np.ndarray:
        if name in self._planes:
            raise MachineError(f"plane {name!r} already allocated")
        plane = np.full((self.rows, self.cols, *tail), fill, dtype=dtype)
        self._planes[name] = plane
        return plane

    def plane(self, name: str) -> np.ndarray:
        try:
            return self._planes[name]
        except KeyError:
            raise MachineError(f"no plane {name!r}") from None

    # -- lock-step operations ------------------------------------------------

    def compute(self, fn: Callable[..., None], *plane_names: str, work_per_cell: int = 1) -> None:
        """One compute macro step: ``fn(*planes)`` mutates planes in place.

        ``work_per_cell`` charges the per-cell serial work (e.g. the
        number of local matrix entries each cell scans this step).
        """
        fn(*(self._planes[name] for name in plane_names))
        self.stats.compute_steps += 1
        self.stats.local_work += work_per_cell * self.cells

    def row_reduce_broadcast(self, values: np.ndarray, op: str) -> np.ndarray:
        """Reduce *values* along each row and broadcast the result back.

        ``values`` has shape (R, C, ...); the result has the same shape
        with every cell of a row holding the row reduction.  Costs
        2 (C - 1) single-hop communication steps.
        """
        reduced = self._reduce(values, op, axis=1)
        self.stats.comm_steps += 2 * max(0, self.cols - 1)
        return np.broadcast_to(np.expand_dims(reduced, 1), values.shape).copy()

    def col_reduce_broadcast(self, values: np.ndarray, op: str) -> np.ndarray:
        """Column-wise version of :meth:`row_reduce_broadcast`."""
        reduced = self._reduce(values, op, axis=0)
        self.stats.comm_steps += 2 * max(0, self.rows - 1)
        return np.broadcast_to(np.expand_dims(reduced, 0), values.shape).copy()

    @staticmethod
    def _reduce(values: np.ndarray, op: str, axis: int) -> np.ndarray:
        if op == "or":
            return values.any(axis=axis)
        if op == "and":
            return values.all(axis=axis)
        if op == "add":
            return values.sum(axis=axis)
        if op == "max":
            return values.max(axis=axis)
        raise MachineError(f"unknown reduction {op!r}")

    def shift(self, values: np.ndarray, drow: int, dcol: int, fill=0) -> np.ndarray:
        """One single-hop shift of a value plane (edges filled)."""
        if drow not in (-1, 0, 1) or dcol not in (-1, 0, 1):
            raise MachineError("mesh shifts are single-hop")
        out = np.full_like(values, fill)
        src_r = slice(max(0, -drow), self.rows - max(0, drow))
        dst_r = slice(max(0, drow), self.rows - max(0, -drow))
        src_c = slice(max(0, -dcol), self.cols - max(0, dcol))
        dst_c = slice(max(0, dcol), self.cols - max(0, -dcol))
        out[dst_r, dst_c] = values[src_r, src_c]
        self.stats.comm_steps += 1
        return out
