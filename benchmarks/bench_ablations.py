"""Ablations of design choices the paper calls out.

* **ABL-T** — footnote 1: "In our implementation, we also restrict labels
  by using word category information."  We run the English grammar with
  and without its lexical table and measure initial domain sizes and
  parse cost: the refinement is why realistic label sets stay tractable.

* **ABL-F** — footnote 3: the NC-reduction from the Monotone Circuit
  Value Problem to filtering.  We evaluate AND-chains of growing depth by
  filtering and show the iteration count grows linearly with depth — the
  executable form of "filtering is inherently sequential in the worst
  case", which motivates bounding it on the MasPar (design decision 5).

* **ABL-R** — "because of the power of the global router": the same
  global OR costed through the router (ceil(log2 P) scan stages) versus
  through X-Net single-hop shifts (grid-diameter hops).  The router's
  logarithmic reductions are what turn the mesh's O(k + n^2) into the
  MasPar's O(k + log n).
"""

from __future__ import annotations

import pytest

from repro import VectorEngine
from repro.analysis import fit_power_law, format_seconds
from repro.grammar.builtin.english import english_grammar
from repro.grammar.grammar import CDGGrammar
from repro.network import ConstraintNetwork
from repro.reductions import and_chain, evaluate_by_filtering
from repro.workloads import sentence_of_length


def english_without_lexical_table() -> CDGGrammar:
    base = english_grammar()
    return CDGGrammar(
        name="english-no-lexical-table",
        symbols=base.symbols,
        table=base.table,
        constraints=base.constraints,
        lexicon=base.lexicon,
        lexical_table=None,
    )


@pytest.mark.benchmark(group="ablations")
def test_lexical_table_ablation(benchmark, report):
    """ABL-T: the footnote-1 label restriction."""
    refined = english_grammar()
    unrefined = english_without_lexical_table()
    engine = VectorEngine()
    ns = [6, 10, 14]

    def sweep():
        rows = []
        for n in ns:
            words = sentence_of_length(n)
            net_r = ConstraintNetwork(refined, refined.tokenize(words))
            net_u = ConstraintNetwork(unrefined, unrefined.tokenize(words))
            res_r = engine.parse(refined, words)
            res_u = engine.parse(unrefined, words)
            assert res_r.locally_consistent and res_u.locally_consistent
            rows.append((n, net_r.nv, net_u.nv, res_r.stats.wall_seconds, res_u.stats.wall_seconds))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = [
        [
            n,
            nv_r,
            nv_u,
            f"{nv_u / nv_r:.1f}x",
            format_seconds(t_r),
            format_seconds(t_u),
            f"{t_u / t_r:.1f}x",
        ]
        for n, nv_r, nv_u, t_r, t_u in rows
    ]
    report(
        "ABL-T: lexical label restriction (paper footnote 1)",
        ["n", "role values (with)", "(without)", "domain blowup", "parse (with)", "(without)", "slowdown"],
        table,
        notes="Without the (role, category) -> label table every word admits every\n"
              "table-T label for each role; domains and pair-sweep cost inflate.",
    )

    for _, nv_r, nv_u, t_r, t_u in rows:
        assert nv_u > 2 * nv_r  # domains inflate substantially
        assert t_u > t_r  # and so does parse cost


@pytest.mark.benchmark(group="ablations")
def test_filtering_cascade_depth(benchmark, report):
    """ABL-F: filtering iterations track circuit depth (footnote 3)."""
    depths = [2, 4, 8, 16, 32]

    def sweep():
        out = []
        for depth in depths:
            result = evaluate_by_filtering(and_chain(depth), [False, True])
            assert result.output is False
            out.append(result.iterations)
        return out

    iterations = benchmark.pedantic(sweep, rounds=1, iterations=1)

    fit = fit_power_law(depths, iterations)
    report(
        "ABL-F: MCVP filtering cascade (paper footnote 3)",
        ["circuit depth", "filtering iterations"],
        list(zip(depths, iterations, strict=True)),
        notes=f"iterations ~ depth^{fit.exponent:.2f} (R^2={fit.r_squared:.3f}) — the\n"
              "worst case really is sequential, which is why the MasPar bounds filtering.",
    )

    assert 0.85 < fit.exponent < 1.15
    assert iterations[-1] >= depths[-1] - 2


@pytest.mark.benchmark(group="ablations")
def test_router_vs_xnet_reduction(benchmark, report):
    """ABL-R: global OR through the router vs through the mesh."""
    import numpy as np

    from repro.maspar import MP1, xnet_reduce_or

    spans = [2**10, 2**14, 2**18]

    def sweep():
        rows = []
        for span in spans:
            router_machine = MP1(n_virtual=span)
            xnet_machine = MP1(n_virtual=span)
            bits = np.zeros(span, dtype=bool)
            bits[span // 3] = True
            assert router_machine.reduce_or(bits) is True
            assert xnet_reduce_or(xnet_machine, bits) is True
            rows.append(
                (span, router_machine.cycles // router_machine.vfactor,
                 xnet_machine.cycles // xnet_machine.vfactor)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ABL-R: one global OR — router scan vs X-Net shifts",
        ["PEs", "router cycles (O(log P))", "X-Net cycles (O(sqrt P))", "router advantage"],
        [[span, r, x, f"{x / r:.0f}x"] for span, r, x in rows],
        notes="the paper's design decision 3: global AND/OR go through the router.",
    )
    for span, router_cycles, xnet_cycles in rows:
        assert router_cycles < xnet_cycles
    # The gap must widen with machine size.
    gaps = [x / r for _, r, x in rows]
    assert gaps[0] < gaps[1] < gaps[2]
