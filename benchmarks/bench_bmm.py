"""BMM — one kernel core under both parsers: identity gate, then timing.

Thin harness over :mod:`repro.kernels.bench` (the logic lives in the
package so ``repro bench-bmm`` shares it):

* microbench — the four-Russians packed product vs the bit-plane
  ``bool @ bool`` product vs the O(m·k·n) broadcast oracle — plus the
  compiled ``native`` kernel and the autotuned ``auto`` dispatcher when
  a C toolchain is present — per operand shape, each agreeing bit for
  bit before any clock starts;
* end-to-end — the same sentence through a CDG ``ParserSession`` on
  every available kernel backend (identical settled networks), and
  through CYK on each backend vs the set-based chart oracle
  (identical charts and operation counts).

Run standalone to (re)generate the committed record::

    PYTHONPATH=src python benchmarks/bench_bmm.py [--quick]

which writes ``BENCH_bmm.json`` at the repo root.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.kernels.bench import print_report, run_bench


def test_bmm_bench(report):
    """BMM: identity-gated kernel microbench + both parsers end to end."""
    record = run_bench(quick=True)
    assert record["bit_identity"]["ok"], record["bit_identity"]
    rows = [
        [
            "x".join(str(d) for d in row["shape"]),
            row["four_russians_ms"],
            row["planes_ms"],
            row.get("naive_ms", "capped"),
        ]
        for row in record["micro"]
    ]
    report(
        f"BMM microbench (quick, {record['host']['cpu_count']} CPU host)",
        ["shape", "four-Russians ms", "bool@bool ms", "naive ms"],
        rows,
        notes=record["notes"],
    )
    cdg = record["end_to_end"]["cdg"]
    cfg = record["end_to_end"]["cfg"]
    assert cdg["identical"] and cfg["identical"]
    report(
        "Both parsers on the shared kernel core (quick)",
        ["parser", "packed ms", "numpy ms", "oracle ms"],
        [
            [f"CDG n={cdg['sentence_words']}", cdg["latency_ms"]["packed"],
             cdg["latency_ms"]["numpy"], "-"],
            [f"CFG/CYK n={cfg['sentence_words']}", cfg["latency_ms"]["packed"],
             cfg["latency_ms"]["numpy"], cfg["latency_ms"]["sets-oracle"]],
        ],
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small operands and short loops (CI smoke + artifact)")
    args = parser.parse_args()

    out = Path(__file__).resolve().parents[1] / "BENCH_bmm.json"
    record = run_bench(quick=args.quick, out_path=out)
    print_report(record, sys.stdout)
    print(f"wrote {out}")
    raise SystemExit(0 if record["bit_identity"]["ok"] else 1)
