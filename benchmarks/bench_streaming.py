"""STREAMING — word-at-a-time extension vs full reparse per prefix.

The incremental streaming core's claim: growing a parsed prefix by one
word (``StreamingParse.extend``) costs less than reparsing the grown
prefix from scratch, because

* the network template is *prefix-extended* — the frozen packed base
  matrix and cached constraint masks of the k-word shape are scattered
  into the (k+1)-word layout instead of rebuilt, so streaming an n-word
  sentence performs one cumulative build (``full=1, extended=n-1``),
  and
* propagation *resumes* — the retained pre-fixpoint state of the prior
  prefix is embedded (:meth:`ConstraintNetwork.extend_from`) and only
  the new word's blocks change under the re-applied masks.

Eliminations are monotone and the consistency sweep deterministic, so
the streamed settled network must be **bit-identical** to a fresh parse
of every prefix — asserted here before any timing is recorded.

Run standalone to (re)generate the committed record::

    PYTHONPATH=src python benchmarks/bench_streaming.py [--quick]

which writes ``BENCH_streaming.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import ParserSession
from repro.analysis.host import host_metadata
from repro.grammar.builtin.english import english_grammar
from repro.workloads import sentence_of_length

#: Sentence lengths: the paper's sweep ends at 10 words, where the
#: O(NV^2) template build and binary sweep dominate a fresh parse.
LENGTHS = (4, 7, 10)
REPEATS = 5


def assert_prefixes_identical(streamed, fresh, n: int) -> None:
    for k, (left, right) in enumerate(zip(streamed, fresh, strict=True), start=1):
        assert np.array_equal(left.network.alive_bits, right.network.alive_bits), (n, k)
        assert np.array_equal(left.network.matrix_bits, right.network.matrix_bits), (n, k)
        assert left.locally_consistent == right.locally_consistent
        assert left.ambiguous == right.ambiguous


def _time_cold(make_run, repeats: int) -> tuple[list, float]:
    """Best-of-*repeats* where every repeat gets a fresh (cold) session.

    Session construction (grammar compile) happens outside the timed
    region — both sides pay it identically — while template builds land
    inside it: in a streaming setting every longer prefix is a *novel
    shape* (the shape key is the category-set tuple, which grows with
    the sentence), so no realistic cache is ever warm for the next
    prefix, and the build cost is part of the honest per-token price.
    """
    best = float("inf")
    results = None
    for _ in range(repeats):
        run = make_run()
        start = time.perf_counter()
        results = run()
        best = min(best, time.perf_counter() - start)
    return results, best


def _time_warm(run, repeats: int) -> float:
    run()  # warm the template chain
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run_streaming(repeats: int = REPEATS) -> list[dict]:
    grammar = english_grammar()
    rows = []
    for n in LENGTHS:
        words = sentence_of_length(n)

        # Build accounting on a cold session: the acceptance bar is one
        # cumulative build per stream (full=1, extended=n-1, total <= n).
        cold = ParserSession(grammar, engine="vector")
        cold_results = list(iter_stream(cold, words))
        builds = cold.template_builds()
        assert builds["full"] == 1 and builds["extended"] == n - 1, builds

        # Correctness gate: every streamed prefix == a fresh full parse.
        reference = ParserSession(grammar, engine="vector")
        fresh_results = [reference.parse(words[:k]) for k in range(1, n + 1)]
        assert_prefixes_identical(cold_results, fresh_results, n)

        def stream_run(w=words):
            session = ParserSession(grammar, engine="vector")
            return lambda: list(iter_stream(session, w))

        def reparse_run(w=words, m=n):
            session = ParserSession(grammar, engine="vector")
            return lambda: [session.parse(w[:k]) for k in range(1, m + 1)]

        # Headline: cold per-prefix cost (every prefix a novel shape).
        _, stream_best = _time_cold(stream_run, repeats)
        _, reparse_best = _time_cold(reparse_run, repeats)
        # Secondary, for honesty: with templates already cached the
        # streamed fixpoint is identical work by construction (the
        # carried state is bit-identical to the fresh post-mask state),
        # so streaming pays a small embedding overhead and cannot win.
        warm_stream = _time_warm(stream_run(), repeats)
        warm_reparse = _time_warm(reparse_run(), repeats)
        rows.append(
            {
                "n_words": n,
                "template_builds": builds,
                "extend_us_per_token": round(stream_best / n * 1e6, 1),
                "reparse_us_per_prefix": round(reparse_best / n * 1e6, 1),
                "speedup": round(reparse_best / stream_best, 2),
                "warm_extend_us_per_token": round(warm_stream / n * 1e6, 1),
                "warm_reparse_us_per_prefix": round(warm_reparse / n * 1e6, 1),
            }
        )
    return rows


def iter_stream(session: ParserSession, words) -> "list":
    stream = session.stream()
    return [stream.extend(word) for word in words]


def run_bench(repeats: int = REPEATS) -> dict:
    return {
        "bench": "streaming",
        "host": host_metadata(),
        "grammar": "english",
        "engine": "vector",
        "correctness": (
            "every streamed prefix (network bits, verdict, ambiguity) "
            "bit-identical to a fresh full parse of the same words; "
            "asserted before timing"
        ),
        "note": (
            "amortized cost of growing a live parse by one word vs "
            "reparsing each prefix from scratch; cold sessions (headline): "
            "every longer prefix is a novel shape, so the reparse side "
            "pays a full O(NV^2) template+mask build per prefix while the "
            "stream pays one prefix extension — template_builds records "
            "that (1 full + n-1 extended).  warm_* columns show the "
            "cached-template steady state, where the carried state is "
            "bit-identical to the fresh post-mask state and the streamed "
            "fixpoint is therefore identical work plus a small embedding "
            "overhead"
        ),
        "rows": run_streaming(repeats),
    }


def test_streaming_amortized_vs_reparse(report):
    """STREAMING: per-token extension vs from-scratch prefix reparse."""
    data = run_bench(repeats=3)
    report(
        "Streaming extend vs full reparse (english, packed vector)",
        ["n words", "extend us/token", "reparse us/prefix", "speedup", "builds"],
        [
            [
                r["n_words"], r["extend_us_per_token"], r["reparse_us_per_prefix"],
                f"{r['speedup']:.2f}x",
                f"{r['template_builds']['full']}+{r['template_builds']['extended']}ext",
            ]
            for r in data["rows"]
        ],
        notes="prefixes bit-identical to fresh parses (asserted before timing).",
    )
    # Regression floor: where the per-prefix rebuild is largest (n=10),
    # resuming must beat reparsing.  The committed record holds numbers.
    by_n = {r["n_words"]: r for r in data["rows"]}
    assert by_n[10]["speedup"] > 1.0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller load (CI smoke + artifact)"
    )
    args = parser.parse_args()

    record = run_bench(repeats=3 if args.quick else REPEATS)
    out = Path(__file__).resolve().parents[1] / "BENCH_streaming.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    for row in record["rows"]:
        print(
            f"n={row['n_words']:>2}: extend {row['extend_us_per_token']:>8.1f} us/token  "
            f"reparse {row['reparse_us_per_prefix']:>8.1f} us/prefix  "
            f"speedup {row['speedup']:.2f}x  "
            f"builds {row['template_builds']['full']}+{row['template_builds']['extended']}ext"
        )
    print(f"wrote {out}")
