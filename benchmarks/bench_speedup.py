"""RES-T3 — end-to-end parallel/serial speedup (paper section 3).

Paper: the MasPar parses the example sentence in ~0.15 s while "the
corresponding times for our serial implementation (running on a Sun
Sparcstation I) is ... 3 minutes to parse a sentence of 7 words" —
roughly three orders of magnitude.

Reproduced in two frames plus an ablation:

* 1992 frame — simulated MasPar seconds at n=7 versus the paper's
  reported 180 s serial figure.
* host frame — our *exhaustive* serial engine (the paper's algorithm:
  every binary constraint against every O(n^4) pair, which its
  15 s/constraint figure implies) versus the data-parallel vector
  engine, wall-clock on this machine.
* ablation — the *pruned* serial engine (skip dead role values and
  already-zero entries) closes most of that gap at small n, showing the
  1992 contrast was about unpruned O(k n^4) work, exactly what SIMD
  hardware absorbs.
"""

from __future__ import annotations

import pytest

from repro import SerialEngine, VectorEngine
from repro.analysis import format_seconds
from repro.grammar.builtin import program_grammar
from repro.parsec import MasParEngine
from repro.parsec.timing import PAPER_SERIAL_SEVEN_WORD_SECONDS
from repro.workloads import toy_sentence


@pytest.mark.benchmark(group="res-t3")
def test_seven_word_speedup(benchmark, report):
    grammar = program_grammar()
    seven = toy_sentence(7)

    def run():
        maspar = MasParEngine().parse(grammar, seven)
        exhaustive = SerialEngine(exhaustive=True).parse(grammar, seven)
        pruned = SerialEngine().parse(grammar, seven)
        vector = VectorEngine().parse(grammar, seven)
        return maspar, exhaustive, pruned, vector

    maspar, exhaustive, pruned, vector = benchmark.pedantic(run, rounds=1, iterations=1)

    sim = maspar.stats.simulated_seconds
    wall_ex = exhaustive.stats.wall_seconds
    wall_pr = pruned.stats.wall_seconds
    wall_vec = vector.stats.wall_seconds
    rows = [
        [
            "paper (1992)",
            "Sparcstation I serial vs MasPar",
            format_seconds(PAPER_SERIAL_SEVEN_WORD_SECONDS),
            "~0.15 s",
            f"{PAPER_SERIAL_SEVEN_WORD_SECONDS / 0.15:,.0f}x",
        ],
        [
            "1992 frame (sim)",
            "paper serial vs simulated MasPar",
            format_seconds(PAPER_SERIAL_SEVEN_WORD_SECONDS),
            format_seconds(sim),
            f"{PAPER_SERIAL_SEVEN_WORD_SECONDS / sim:,.0f}x",
        ],
        [
            "host frame",
            "exhaustive serial vs vector engine",
            format_seconds(wall_ex),
            format_seconds(wall_vec),
            f"{wall_ex / wall_vec:,.0f}x",
        ],
        [
            "host ablation",
            "pruned serial vs vector engine",
            format_seconds(wall_pr),
            format_seconds(wall_vec),
            f"{wall_pr / wall_vec:,.1f}x",
        ],
    ]
    report(
        "RES-T3: parallel/serial speedup on a 7-word sentence (toy grammar)",
        ["frame", "comparison", "serial", "parallel", "speedup"],
        rows,
        notes=(
            "paper claim: ~3 min serial vs ~0.15 s parallel.  The pruned-serial row is an\n"
            "ablation beyond the paper: unary pre-pruning recovers much of the gap at small n,\n"
            "so the 1992 contrast is specifically about unpruned O(k n^4) pair sweeps."
        ),
    )

    # All four settle identically (spot check the headline bits).
    assert exhaustive.locally_consistent == pruned.locally_consistent == vector.locally_consistent
    # 1992 frame: three-orders-of-magnitude territory (paper: 1200x).
    assert PAPER_SERIAL_SEVEN_WORD_SECONDS / sim > 100
    # Host frame: the data-parallel engine wins big over the faithful
    # exhaustive serial sweep ...
    assert wall_ex / wall_vec > 10
    # ... and pruning explains most of the difference.
    assert wall_ex / wall_pr > 5
