"""RES-T1 — per-constraint propagation time (paper section 3).

Paper: "Time trials indicate that it takes less than 10 milliseconds to
propagate a constraint in a network of one to seven words" on the
MasPar; "15 seconds to apply a single constraint" for the serial
implementation on a Sparcstation I (7 words).

Two like-for-like comparisons reproduce the shape:

* **1992 frame** — the simulated MasPar's per-constraint time (cycle
  model, calibrated) stays flat and ~10 ms-order for n = 1..7, against
  the paper's *reported* 15 s serial figure: a three-orders-of-magnitude
  gap, as published.
* **this-host frame** — our serial engine versus our vector (SIMD-style)
  engine, both wall-clock on the same machine: the serial cost grows
  ~ n^4 while the vector cost barely moves, the same qualitative gap.
"""

from __future__ import annotations

import statistics

import pytest

from repro import SerialEngine, VectorEngine
from repro.analysis import fit_power_law, format_seconds
from repro.grammar.builtin import program_grammar
from repro.parsec import MasParEngine
from repro.parsec.timing import (
    PAPER_PER_CONSTRAINT_BOUND_SECONDS,
    PAPER_SERIAL_PER_CONSTRAINT_SECONDS,
)
from repro.workloads import toy_sentence

NS = list(range(1, 8))


def maspar_per_constraint_seconds(n: int) -> float:
    engine = MasParEngine()
    result = engine.parse(program_grammar(), toy_sentence(n))
    cycles = result.stats.extra["constraint_cycles"]
    factor = result.stats.extra["calibration_factor"]
    return statistics.mean(cycles) * factor / engine.cost.clock_hz


def wall_per_constraint_seconds(engine, n: int) -> float:
    result = engine.parse(program_grammar(), toy_sentence(n))
    return result.stats.wall_seconds / result.network.grammar.k


@pytest.mark.benchmark(group="res-t1")
def test_per_constraint_time_one_to_seven_words(benchmark, report):
    def sweep():
        maspar = [maspar_per_constraint_seconds(n) for n in NS]
        serial = [wall_per_constraint_seconds(SerialEngine(exhaustive=True), n) for n in NS]
        vector = [wall_per_constraint_seconds(VectorEngine(), n) for n in NS]
        return maspar, serial, vector

    maspar, serial, vector = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            n,
            format_seconds(m),
            f"{PAPER_SERIAL_PER_CONSTRAINT_SECONDS / m:,.0f}x" if n == 7 else "",
            format_seconds(s),
            format_seconds(v),
            f"{s / v:,.0f}x",
        ]
        for n, m, s, v in zip(NS, maspar, serial, vector, strict=True)
    ]
    report(
        "RES-T1: per-constraint propagation time, n = 1..7",
        [
            "n",
            "MasPar sim (1992 s)",
            "paper-serial/sim",
            "serial exhaustive (host)",
            "vector (host)",
            "serial/vector",
        ],
        rows,
        notes=(
            f"paper: <{format_seconds(PAPER_PER_CONSTRAINT_BOUND_SECONDS)} per constraint on the MasPar, "
            f"{format_seconds(PAPER_SERIAL_PER_CONSTRAINT_SECONDS)} serial on a Sparcstation I (n=7).\n"
            "Shape claims: the MasPar column is flat for n <= 7 (one virtualization unit);\n"
            "the exhaustive serial column grows ~ n^4; the data-parallel engine grows far slower."
        ),
    )

    # Flat through n = 7 and the same order as the paper's 10 ms bound.
    assert max(maspar) / min(maspar) < 2.5
    assert maspar[-1] < 10 * PAPER_PER_CONSTRAINT_BOUND_SECONDS
    # In the 1992 frame: the published serial figure is >= 2 orders of
    # magnitude above the simulated parallel per-constraint time.
    assert PAPER_SERIAL_PER_CONSTRAINT_SECONDS / maspar[-1] > 100
    # In the host frame: serial per-constraint cost grows ~ n^4, the
    # vector engine's much more slowly, and serial is already behind at
    # n = 7 (the gap keeps widening with n; RES-T3 shows it at scale).
    serial_fit = fit_power_law(NS[2:], serial[2:])
    vector_fit = fit_power_law(NS[2:], vector[2:])
    assert 3.0 < serial_fit.exponent < 5.0
    assert serial_fit.exponent - vector_fit.exponent > 0.8
    assert serial[-1] / vector[-1] > 2
