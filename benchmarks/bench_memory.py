"""MEM — the packed core's footprint: bytes per network, cache bytes, latency.

The bit-packed execution core stores the O(n^4) arc matrices 8 bits per
byte with byte-aligned role segments (see ``repro.network.bitset``), so
a settled network's mutable state and the template cache behind it
shrink by roughly the packing factor — without giving up throughput,
because the bitwise kernels do 64 matrix entries per word operation.

This bench parses same-shape batches at n = 4, 7, 10 (English grammar)
through the packed ``vector`` engine and the byte-per-bool
``vector-bool`` engine (the same engine with packing disabled), and
records, per length:

* resident bytes of one settled network's mutable state
  (``stats.extra["network_bytes"]``, as each engine represents it);
* bytes pinned by the session's template cache;
* parse latency, best-of-``REPEATS`` over a warmed session.

The reduction grows with n (the packed row overhead is per *role*, so
short sentences amortize it worst) and must reach at least 4x by
n = 10 while packed latency stays at or below the boolean path's.

Run standalone to (re)generate the committed record::

    PYTHONPATH=src python benchmarks/bench_memory.py [--quick]

which writes ``BENCH_memory.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import ParserSession
from repro.analysis.host import host_metadata
from repro.grammar.builtin.english import english_grammar
from repro.workloads import sentence_of_length

LENGTHS = (4, 7, 10)
BATCH = 8
REPEATS = 3
ENGINES = ("vector", "vector-bool")


def measure_engine(engine: str, n: int, *, batch: int, repeats: int) -> dict:
    """Per-network bytes, cache bytes, and best-of latency for one engine."""
    session = ParserSession(english_grammar(), engine=engine)
    words = sentence_of_length(n)
    result = session.parse(words)  # warm the template cache
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(batch):
            result = session.parse(words)
        best = min(best, (time.perf_counter() - start) / batch)
    return {
        "network_bytes": result.stats.extra["network_bytes"],
        "template_cache_bytes": session.cached_bytes(),
        "latency_ms": round(best * 1000, 3),
        "sentences_per_s": round(1.0 / best, 1),
    }


def measure(n: int, *, batch: int = BATCH, repeats: int = REPEATS) -> dict:
    by_engine = {
        engine: measure_engine(engine, n, batch=batch, repeats=repeats)
        for engine in ENGINES
    }
    packed, boolean = by_engine["vector"], by_engine["vector-bool"]
    return {
        "n": n,
        "engines": by_engine,
        "memory_reduction": round(
            boolean["network_bytes"] / packed["network_bytes"], 2
        ),
        "cache_reduction": round(
            boolean["template_cache_bytes"] / packed["template_cache_bytes"], 2
        ),
        "throughput_ratio": round(
            packed["sentences_per_s"] / boolean["sentences_per_s"], 2
        ),
    }


def run_bench(*, batch: int = BATCH, repeats: int = REPEATS) -> dict:
    return {
        "bench": "memory",
        "host": host_metadata(),
        "grammar": "english",
        "engines": list(ENGINES),
        "batch": batch,
        "repeats": repeats,
        "results": [measure(n, batch=batch, repeats=repeats) for n in LENGTHS],
    }


def test_memory(report):
    """MEM: packed vs boolean footprint and latency, vector engine."""
    data = run_bench()
    rows = []
    for r in data["results"]:
        packed = r["engines"]["vector"]
        boolean = r["engines"]["vector-bool"]
        rows.append([
            r["n"],
            packed["network_bytes"], boolean["network_bytes"],
            f"{r['memory_reduction']:.2f}x",
            f"{r['cache_reduction']:.2f}x",
            packed["latency_ms"], boolean["latency_ms"],
            f"{r['throughput_ratio']:.2f}x",
        ])
    report(
        "Memory: packed (vector) vs byte-per-bool (vector-bool), english",
        ["n", "packed B", "bool B", "net reduction", "cache reduction",
         "packed ms", "bool ms", "thru ratio"],
        rows,
        notes="Reduction grows with n: packed row overhead is per role, "
        "byte-per-bool cost is per matrix entry.",
    )
    at_10 = next(r for r in data["results"] if r["n"] == 10)
    # The tentpole's acceptance bar: >= 4x smaller networks at n = 10
    # with no throughput regression (loose floor; the committed record
    # holds the real numbers).
    assert at_10["memory_reduction"] >= 4.0
    assert at_10["throughput_ratio"] > 0.95


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller load (CI smoke + artifact)"
    )
    args = parser.parse_args()
    record = run_bench(batch=4 if args.quick else BATCH,
                       repeats=2 if args.quick else REPEATS)
    out = Path(__file__).resolve().parents[1] / "BENCH_memory.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    for r in record["results"]:
        packed = r["engines"]["vector"]
        boolean = r["engines"]["vector-bool"]
        print(
            f"n={r['n']:2d}  packed {packed['network_bytes']:7d}B  "
            f"bool {boolean['network_bytes']:7d}B  "
            f"reduction {r['memory_reduction']:.2f}x  "
            f"cache {r['cache_reduction']:.2f}x  "
            f"throughput ratio {r['throughput_ratio']:.2f}x"
        )
    print(f"wrote {out}")
