"""Shared helpers for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Every benchmark prints a paper-versus-measured table through the
``report`` fixture (bypassing pytest capture) so the harness output is
the reproduction record; EXPERIMENTS.md snapshots these tables.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table


@pytest.fixture
def report(capsys):
    """Print a table to the real terminal regardless of capture."""

    def emit(title: str, headers, rows, notes: str = ""):
        with capsys.disabled():
            print()
            print(format_table(headers, rows, title=title))
            if notes:
                print(notes)
            print()

    return emit
