"""CLAIM-F — filtering settles in few iterations (paper sections 1.4/2.1).

The paper: full filtering is worst-case sequential (they reduce the
Monotone Circuit Value Problem to it), "however ... we have developed a
variety of grammars for English, and have found that very few filtering
steps (typically fewer than 10) are required at the end of constraint
propagation" — which justifies bounding the iterations on the MasPar
(design decision 5).

This bench measures, over a mixed corpus (grammatical + scrambled
sentences, several grammars), (a) the number of final filtering
iterations, and (b) the ablation: how many role values bounded filtering
(0 iterations) leaves behind versus the full fixpoint.
"""

from __future__ import annotations

import random
import statistics

import pytest

from repro import VectorEngine
from repro.grammar.builtin import (
    anbn_grammar,
    copy_language_grammar,
    english_grammar,
    program_grammar,
)
from repro.workloads import random_sentence, scrambled_sentence, sentence_of_length


def build_corpus():
    rng = random.Random(42)
    cases = [(program_grammar(), ["the", "program", "runs"])]
    cases += [(english_grammar(), sentence_of_length(n)) for n in range(2, 13)]
    cases += [(english_grammar(), random_sentence(rng)) for _ in range(10)]
    cases += [(english_grammar(), scrambled_sentence(rng)) for _ in range(10)]
    cases += [(anbn_grammar(), ["a"] * k + ["b"] * k) for k in (2, 4, 6)]
    cases += [(copy_language_grammar(), list("abba") * 2)]
    return cases


@pytest.mark.benchmark(group="claim-f")
def test_filtering_iterations_are_few(benchmark, report):
    engine = VectorEngine()
    corpus = build_corpus()

    def sweep():
        iters = []
        leftovers = []
        for grammar, words in corpus:
            full = engine.parse(grammar, words)
            bounded = engine.parse(grammar, words, filter_limit=0)
            iters.append(full.stats.filtering_iterations)
            leftovers.append(
                int(bounded.network.alive.sum()) - int(full.network.alive.sum())
            )
        return iters, leftovers

    iters, leftovers = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        ["sentences", len(corpus), ""],
        ["filtering iterations: max", max(iters), "paper: typically < 10"],
        ["filtering iterations: mean", f"{statistics.mean(iters):.2f}", ""],
        ["filtering iterations: median", statistics.median(iters), ""],
        [
            "sentences needing 0 iterations",
            sum(1 for i in iters if i == 0),
            "already consistent after per-constraint passes",
        ],
        [
            "extra role values kept by bounded filtering: max",
            max(leftovers),
            "ablation of design decision 5",
        ],
        [
            "extra role values kept: mean",
            f"{statistics.mean(leftovers):.2f}",
            "",
        ],
    ]
    report(
        "CLAIM-F: filtering iterations over a mixed corpus",
        ["metric", "value", "note"],
        rows,
    )

    # The paper's claim, verbatim.
    assert max(iters) < 10
    # Bounded filtering never removes *more* than the fixpoint.
    assert min(leftovers) >= 0
