"""SERVE — service throughput under shape-interleaved concurrent load.

The serving layer's claim is architectural, exactly like the pipeline's:
the :class:`ParseService` computes bit-identical results to a bare
``ParserSession.parse_many``, but its *shape-batched scheduler* reorders
a shape-interleaved arrival stream into single-shape batches, so each
batch binds one cached :class:`NetworkTemplate`.  Under the adversarial
(and realistic) serving condition — more live sentence shapes than the
bounded per-session template LRU holds — arrival-order processing
thrashes the cache and rebuilds a template for nearly every sentence,
while the service's batches are near-perfect cache hits.  That
scheduling win is what this bench measures; it holds even on a single
core.  On multi-core hosts the worker pool adds parallel speedup on top
(numpy releases the GIL inside its ufunc loops), which this container
(1 CPU) cannot show.

Two load modes over the same workload, per worker count (1/2/4):

* **open loop** — every request submitted up front (a burst at the
  queue bound), then gathered; plus a bit-identical comparison of every
  result against the single-session baseline.
* **closed loop** — ``2 x workers`` producer threads, each submitting
  and waiting one request at a time; latency percentiles come from the
  service's own metrics.  Closed-loop concurrency is bounded by the
  producer count, so batches barely form; the service runs in latency
  mode (``max_linger=0``) and the interesting numbers are the
  percentiles, not the throughput.

Run standalone to (re)generate the committed record::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]

which writes ``BENCH_service.json`` at the repo root.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np

from repro import ParserSession
from repro.analysis.host import host_metadata
from repro.grammar.builtin.english import english_grammar
from repro.serve import ParseService
from repro.workloads import sentence_of_length

#: Distinct sentence shapes interleaved in the arrival stream (lengths
#: 3..10) against a deliberately smaller per-session template cache:
#: the long-tail-of-shapes serving condition.
SHAPE_LENGTHS = tuple(range(3, 11))
TEMPLATE_CACHE = 4
REQUESTS = 160
MAX_BATCH = 20
LINGER = 0.005
WORKER_COUNTS = (1, 2, 4)
REPEATS = 2


def workload(n_requests: int) -> list[list[str]]:
    """A round-robin shape-interleaved request stream."""
    return [
        sentence_of_length(SHAPE_LENGTHS[i % len(SHAPE_LENGTHS)])
        for i in range(n_requests)
    ]


def service_for(workers: int, n_requests: int, linger: float = LINGER) -> ParseService:
    return ParseService(
        english_grammar(),
        engine="vector",
        workers=workers,
        max_queue=n_requests,
        max_batch_size=MAX_BATCH,
        max_linger=linger,
        admission="block",
        template_cache_size=TEMPLATE_CACHE,
    )


def run_baseline(sentences: list[list[str]]) -> tuple[list, float]:
    """Arrival-order ``parse_many`` on one session with the same cache."""
    best = float("inf")
    results = None
    for _ in range(REPEATS):
        session = ParserSession(
            english_grammar(), engine="vector", template_cache_size=TEMPLATE_CACHE
        )
        start = time.perf_counter()
        results = session.parse_many(sentences)
        best = min(best, time.perf_counter() - start)
    return results, len(sentences) / best


def assert_bit_identical(served, baseline) -> None:
    for warm, cold in zip(served, baseline, strict=True):
        assert np.array_equal(warm.network.alive, cold.network.alive)
        assert np.array_equal(warm.network.matrix, cold.network.matrix)
        assert warm.locally_consistent == cold.locally_consistent
        assert warm.ambiguous == cold.ambiguous


def run_open_loop(workers: int, sentences: list[list[str]], baseline_results) -> dict:
    best = float("inf")
    snapshot = None
    for _ in range(REPEATS):
        with service_for(workers, len(sentences)) as service:
            start = time.perf_counter()
            futures = [service.submit(words) for words in sentences]
            served = [future.result() for future in futures]
            service.drain()
            best = min(best, time.perf_counter() - start)
            snapshot = service.snapshot()
        assert_bit_identical(served, baseline_results)
    cache = snapshot["service"]["template_cache"]
    return {
        "workers": workers,
        "sps": round(len(sentences) / best, 1),
        "batch_size_mean": round(snapshot["histograms"]["batch_size"]["mean"], 1),
        "template_hits": cache["hits"],
        "template_misses": cache["misses"],
        "counters": snapshot["counters"],
    }


def run_closed_loop(workers: int, sentences: list[list[str]]) -> dict:
    producers = workers * 2
    best = float("inf")
    snapshot = None
    for _ in range(REPEATS):
        # Latency mode: with <= `producers` requests outstanding there
        # is nothing to linger for.
        with service_for(workers, len(sentences), linger=0.0) as service:
            slices = [sentences[i::producers] for i in range(producers)]

            def produce(slice_):
                for words in slice_:
                    service.parse(words)

            threads = [
                threading.Thread(target=produce, args=(s,), daemon=True) for s in slices
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            best = min(best, time.perf_counter() - start)
            snapshot = service.snapshot()
    latency = snapshot["histograms"]["latency_seconds"]
    return {
        "workers": workers,
        "producers": producers,
        "sps": round(len(sentences) / best, 1),
        "latency_ms_p50": round(latency["p50"] * 1000, 2),
        "latency_ms_p99": round(latency["p99"] * 1000, 2),
    }


def run_bench(n_requests: int = REQUESTS) -> dict:
    sentences = workload(n_requests)
    baseline_results, baseline_sps = run_baseline(sentences)
    open_loop = []
    closed_loop = []
    for workers in WORKER_COUNTS:
        row = run_open_loop(workers, sentences, baseline_results)
        row["speedup_vs_baseline"] = round(row["sps"] / baseline_sps, 2)
        open_loop.append(row)
        closed = run_closed_loop(workers, sentences)
        closed["speedup_vs_baseline"] = round(closed["sps"] / baseline_sps, 2)
        closed_loop.append(closed)
    return {
        "bench": "service",
        "host": host_metadata(),
        "grammar": "english",
        "engine": "vector",
        "requests": n_requests,
        "shapes": len(SHAPE_LENGTHS),
        "template_cache_size": TEMPLATE_CACHE,
        "max_batch_size": MAX_BATCH,
        "max_linger_s": LINGER,
        "correctness": "service results bit-identical to ParserSession.parse_many",
        "baseline": {
            "description": "one ParserSession, arrival order (shape-interleaved)",
            "sps": round(baseline_sps, 1),
        },
        "open_loop": open_loop,
        "closed_loop": closed_loop,
    }


def test_service_throughput(report):
    """SERVE: shape-batched scheduling vs arrival-order baseline."""
    data = run_bench(n_requests=64)
    rows = [
        [r["workers"], r["sps"], f"{r['speedup_vs_baseline']:.2f}x",
         r["batch_size_mean"], f"{r['template_hits']}/{r['template_misses']}"]
        for r in data["open_loop"]
    ]
    report(
        "ParseService (open loop) vs single-session arrival order "
        f"(english, vector, {data['shapes']} shapes, cache {data['template_cache_size']})",
        ["workers", "sents/s", "speedup", "batch mean", "tmpl hits/misses"],
        rows,
        notes=f"baseline {data['baseline']['sps']} sents/s; results bit-identical.",
    )
    # Loose regression floor — the committed record holds the real numbers.
    assert data["open_loop"][0]["speedup_vs_baseline"] > 1.0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller load (CI smoke + artifact)"
    )
    args = parser.parse_args()

    record = run_bench(n_requests=64 if args.quick else REQUESTS)
    out = Path(__file__).resolve().parents[1] / "BENCH_service.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"baseline (arrival order): {record['baseline']['sps']:8.1f} sents/s")
    for row in record["open_loop"]:
        print(
            f"open   loop w={row['workers']}: {row['sps']:8.1f} sents/s  "
            f"{row['speedup_vs_baseline']:.2f}x  (batch mean {row['batch_size_mean']})"
        )
    for row in record["closed_loop"]:
        print(
            f"closed loop w={row['workers']}: {row['sps']:8.1f} sents/s  "
            f"{row['speedup_vs_baseline']:.2f}x  (p50 {row['latency_ms_p50']} ms)"
        )
    print(f"wrote {out}")
