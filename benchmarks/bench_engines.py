"""MICRO — engine microbenchmarks (pytest-benchmark timings).

Wall-clock cost of each engine on fixed workloads, for regression
tracking.  These are this-host numbers; the paper-facing measurements
live in the RES-* and FIG8 benches.
"""

from __future__ import annotations

import pytest

from repro import ParserSession, PRAMEngine, SerialEngine, VectorEngine
from repro.grammar.builtin import program_grammar
from repro.grammar.builtin.english import english_grammar
from repro.network import ConstraintNetwork
from repro.parsec import MasParEngine
from repro.search import extract_parses
from repro.workloads import sentence_of_length


@pytest.mark.benchmark(group="micro-toy")
@pytest.mark.parametrize(
    "engine",
    [SerialEngine(), VectorEngine(), MasParEngine(), PRAMEngine()],
    ids=["serial", "vector", "maspar", "pram"],
)
def test_parse_toy_sentence(benchmark, engine):
    grammar = program_grammar()
    benchmark.pedantic(
        lambda: engine.parse(grammar, "The program runs"), rounds=3, iterations=1
    )


@pytest.mark.benchmark(group="micro-english")
@pytest.mark.parametrize("n", [5, 10])
@pytest.mark.parametrize(
    "engine",
    [SerialEngine(), VectorEngine(), MasParEngine()],
    ids=["serial", "vector", "maspar"],
)
def test_parse_english_sentence(benchmark, engine, n):
    grammar = english_grammar()
    words = sentence_of_length(n)
    benchmark.pedantic(lambda: engine.parse(grammar, words), rounds=3, iterations=1)


@pytest.mark.benchmark(group="micro-session")
@pytest.mark.parametrize("n", [5, 10])
def test_parse_english_warm_session(benchmark, n):
    """The amortized path: templates and masks cached across calls."""
    session = ParserSession(english_grammar(), engine="vector")
    words = sentence_of_length(n)
    session.parse(words)  # warm the template cache
    benchmark.pedantic(lambda: session.parse(words), rounds=3, iterations=10)


@pytest.mark.benchmark(group="micro-components")
def test_network_construction(benchmark):
    grammar = english_grammar()
    sentence = grammar.tokenize(sentence_of_length(12))
    benchmark(ConstraintNetwork, grammar, sentence)


@pytest.mark.benchmark(group="micro-components")
def test_extraction(benchmark):
    grammar = english_grammar()
    result = VectorEngine().parse(grammar, sentence_of_length(11))
    benchmark(lambda: extract_parses(result.network, limit=None))


@pytest.mark.benchmark(group="micro-components")
def test_tokenize(benchmark):
    grammar = english_grammar()
    words = sentence_of_length(14)
    benchmark(grammar.tokenize, words)
