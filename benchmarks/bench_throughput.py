"""THRU — sessions/second: one-shot ``parse()`` vs ``ParserSession.parse_many()``.

The pipeline's claim is architectural, not algorithmic: both paths run
the same engine over bit-identical networks, but the session path pays
for grammar compilation, template construction, and constraint-mask
evaluation once per *shape* instead of once per *sentence*.  This bench
measures that amortization as sentences/second on the English grammar
at n = 3, 7, 10, over batches of varied same-shape sentences.

Run standalone to (re)generate the committed record::

    PYTHONPATH=src python benchmarks/bench_throughput.py

which writes ``BENCH_throughput.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import ParserSession, VectorEngine
from repro.analysis.host import host_metadata
from repro.grammar.builtin.english import english_grammar
from repro.workloads import sentence_of_length
from repro.workloads.sentences import ADJS, NOUNS, PREPS, VERBS_INTRANS, VERBS_TRANS

LENGTHS = (3, 7, 10)
BATCH_SIZE = 32
REPEATS = 3

#: Same-category substitution pools, used to vary surface words without
#: changing the sentence shape (so the template cache actually engages,
#: as it would on a real corpus of same-length sentences).
_POOLS: dict[str, tuple[str, ...]] = {}
for _pool in (NOUNS, ADJS, PREPS, VERBS_TRANS, VERBS_INTRANS):
    for _word in _pool:
        _POOLS[_word] = _pool


def batch_for(n: int, size: int = BATCH_SIZE) -> list[list[str]]:
    """*size* varied sentences of length *n*, all with the base shape."""
    grammar = english_grammar()
    base = sentence_of_length(n)
    base_shape = grammar.tokenize(base).category_sets
    batch = []
    for i in range(size):
        words = [
            _POOLS[w][(_POOLS[w].index(w) + i) % len(_POOLS[w])] if w in _POOLS else w
            for w in base
        ]
        # Substitutions must not perturb the category signature; fall
        # back to the base sentence if a pool word is lexically richer.
        batch.append(words if grammar.tokenize(words).category_sets == base_shape else base)
    return batch


def measure(n: int) -> dict:
    """Best-of-``REPEATS`` sentences/sec for both paths at length *n*."""
    grammar = english_grammar()
    sentences = batch_for(n)
    engine = VectorEngine()
    session = ParserSession(grammar, engine="vector")

    per_call_best = float("inf")
    session_best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        one_shot = [engine.parse(grammar, s) for s in sentences]
        per_call_best = min(per_call_best, time.perf_counter() - start)

        start = time.perf_counter()
        batched = session.parse_many(sentences)
        session_best = min(session_best, time.perf_counter() - start)

    # Sanity: the two paths must agree sentence by sentence.
    for a, b in zip(one_shot, batched, strict=True):
        assert a.locally_consistent == b.locally_consistent
        assert a.ambiguous == b.ambiguous

    return {
        "n": n,
        "batch_size": len(sentences),
        "per_call_sps": round(len(sentences) / per_call_best, 1),
        "session_sps": round(len(sentences) / session_best, 1),
        "speedup": round(per_call_best / session_best, 2),
    }


def run_bench() -> dict:
    return {
        "bench": "throughput",
        "host": host_metadata(),
        "grammar": "english",
        "engine": "vector",
        "repeats": REPEATS,
        "results": [measure(n) for n in LENGTHS],
    }


def test_throughput(report):
    """THRU: ParserSession amortization on the vector engine."""
    data = run_bench()
    rows = [
        [r["n"], r["batch_size"], r["per_call_sps"], r["session_sps"], f"{r['speedup']:.2f}x"]
        for r in data["results"]
    ]
    report(
        "Throughput: one-shot parse() vs ParserSession.parse_many() (vector, english)",
        ["n", "batch", "per-call sents/s", "session sents/s", "speedup"],
        rows,
        notes="Same engine, bit-identical networks; the speedup is pure amortization.",
    )
    # Loose regression floor — the committed record holds the real numbers.
    at_7 = next(r for r in data["results"] if r["n"] == 7)
    assert at_7["speedup"] > 1.0


if __name__ == "__main__":
    record = run_bench()
    out = Path(__file__).resolve().parents[1] / "BENCH_throughput.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    for r in record["results"]:
        print(
            f"n={r['n']:2d}  per-call {r['per_call_sps']:8.1f}/s  "
            f"session {r['session_sps']:8.1f}/s  speedup {r['speedup']:.2f}x"
        )
    print(f"wrote {out}")
