"""PARALLEL — fused binary kernel and process-pool worker scaling.

Two claims from the process-parallel data plane, measured separately:

* **Fused binary kernel** (single core, algorithmic): the packed
  :class:`VectorEngine` pre-ANDs every binary constraint mask into one
  fused word matrix at template build, so the no-trace hot loop applies
  *one* mask + *one* consistency fixpoint instead of ``k_b``
  mask+sweep pairs.  Maruyama's eliminations are monotone, so the
  greatest fixpoint is unique — the fused route must land on networks
  bit-identical to the interleaved engine's, which this bench asserts
  before timing.  The speedup is real on any machine.
* **Process worker scaling** (multi-core, architectural): a
  :class:`ParallelSession` fans ``parse_many`` over worker processes
  that attach each shape's template from shared memory (exported once,
  never pickled per task).  Scaling with worker count needs actual
  cores: this container has 1 CPU, so the committed record documents
  the dispatch overhead honestly rather than showing the multi-core
  win (results stay bit-identical regardless — that is asserted here).

Run standalone to (re)generate the committed record::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick]

which writes ``BENCH_parallel.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro import ParallelSession, ParserSession
from repro.analysis.host import host_metadata, scaling_claim_allowed
from repro.grammar.builtin.english import english_grammar
from repro.workloads import sentence_of_length

#: Sentence lengths for the fused-kernel timing (the paper's sweep ends
#: at 10 words; n=10 is where the binary sweep dominates).
FUSED_LENGTHS = (3, 7, 10)
FUSED_BATCH = 30
#: Shape-interleaved stream for the process-scaling runs.
SHAPE_LENGTHS = tuple(range(3, 11))
REQUESTS = 96
WORKER_COUNTS = (1, 2, 4)
REPEATS = 3


def assert_bit_identical(a, b) -> None:
    for left, right in zip(a, b, strict=True):
        assert np.array_equal(left.network.alive, right.network.alive)
        assert np.array_equal(left.network.matrix, right.network.matrix)
        assert left.locally_consistent == right.locally_consistent
        assert left.ambiguous == right.ambiguous


def _best_sps(run, n_items: int, repeats: int = REPEATS) -> tuple[list, float]:
    best = float("inf")
    results = None
    for _ in range(repeats):
        start = time.perf_counter()
        results = run()
        best = min(best, time.perf_counter() - start)
    return results, n_items / best


def run_fused_kernel(batch: int = FUSED_BATCH) -> list[dict]:
    """Fused vs interleaved packed engine, single shape per row."""
    grammar = english_grammar()
    rows = []
    for n in FUSED_LENGTHS:
        sentences = [sentence_of_length(n)] * batch
        fused_session = ParserSession(grammar, engine="vector")
        inter_session = ParserSession(grammar, engine="vector-interleaved")
        fused_results, fused_sps = _best_sps(
            lambda s=fused_session: s.parse_many(sentences), batch
        )
        inter_results, inter_sps = _best_sps(
            lambda s=inter_session: s.parse_many(sentences), batch
        )
        assert_bit_identical(fused_results, inter_results)
        assert all(r.stats.extra.get("fused_binary_kernel") for r in fused_results)
        rows.append(
            {
                "n_words": n,
                "batch": batch,
                "fused_sps": round(fused_sps, 1),
                "interleaved_sps": round(inter_sps, 1),
                "speedup": round(fused_sps / inter_sps, 2),
                "consistency_passes_fused": fused_results[0].stats.consistency_passes,
                "consistency_passes_interleaved": inter_results[0].stats.consistency_passes,
            }
        )
    return rows


def run_process_scaling(n_requests: int = REQUESTS) -> dict:
    """ParallelSession worker sweep vs one single-process session."""
    grammar = english_grammar()
    sentences = [
        sentence_of_length(SHAPE_LENGTHS[i % len(SHAPE_LENGTHS)])
        for i in range(n_requests)
    ]
    single = ParserSession(grammar, engine="vector")
    baseline_results, baseline_sps = _best_sps(
        lambda: single.parse_many(sentences), n_requests
    )
    rows = []
    for workers in WORKER_COUNTS:
        with ParallelSession(grammar, engine="vector", workers=workers) as session:
            results, sps = _best_sps(lambda: session.parse_many(sentences), n_requests)
            shared = session.shared_bytes()
        assert_bit_identical(results, baseline_results)
        rows.append(
            {
                "workers": workers,
                "sps": round(sps, 1),
                "speedup_vs_single": round(sps / baseline_sps, 2),
                # Only a *claim* when the host has the cores to back it;
                # otherwise the ratio documents dispatch overhead.
                "scaling_claim": scaling_claim_allowed(workers),
                "shared_bytes": shared,
            }
        )
    return {
        "baseline_sps": round(baseline_sps, 1),
        "requests": n_requests,
        "shapes": len(SHAPE_LENGTHS),
        "rows": rows,
    }


def run_bench(batch: int = FUSED_BATCH, n_requests: int = REQUESTS) -> dict:
    cpus = os.cpu_count() or 1
    return {
        "bench": "parallel",
        "grammar": "english",
        "engine": "vector",
        "host": host_metadata(),
        "host_cpus": cpus,
        "correctness": (
            "fused fixpoints bit-identical to interleaved; ParallelSession "
            "results bit-identical to single-process ParserSession"
        ),
        "note": (
            f"process scaling needs real cores: this host has {cpus} CPU(s), "
            "so worker counts beyond the core count measure dispatch overhead, "
            "not parallel speedup; the fused-kernel speedup is per-core and "
            "holds everywhere"
        ),
        "fused_kernel": run_fused_kernel(batch),
        "process_scaling": run_process_scaling(n_requests),
    }


def test_fused_kernel_and_process_scaling(report):
    """PARALLEL: one fused mask pass vs k_b interleaved mask+sweep pairs."""
    data = run_bench(batch=10, n_requests=32)
    report(
        "Fused binary kernel vs interleaved (english, packed vector, single core)",
        ["n words", "fused s/s", "interleaved s/s", "speedup", "passes f/i"],
        [
            [r["n_words"], r["fused_sps"], r["interleaved_sps"],
             f"{r['speedup']:.2f}x",
             f"{r['consistency_passes_fused']}/{r['consistency_passes_interleaved']}"]
            for r in data["fused_kernel"]
        ],
        notes="fixpoints bit-identical (asserted before timing).",
    )
    scaling = data["process_scaling"]
    report(
        f"ParallelSession worker sweep ({data['host_cpus']} CPU host)",
        ["workers", "sents/s", "vs single-process"],
        [
            [r["workers"], r["sps"], f"{r['speedup_vs_single']:.2f}x"]
            for r in scaling["rows"]
        ],
        notes=f"single-process baseline {scaling['baseline_sps']} sents/s; " + data["note"],
    )
    # Loose regression floor: the fused kernel must win where the binary
    # sweep dominates (n=10).  The committed record holds the real numbers.
    by_n = {r["n_words"]: r for r in data["fused_kernel"]}
    assert by_n[10]["speedup"] > 1.1


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller load (CI smoke + artifact)"
    )
    args = parser.parse_args()

    record = run_bench(
        batch=10 if args.quick else FUSED_BATCH,
        n_requests=32 if args.quick else REQUESTS,
    )
    out = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    for row in record["fused_kernel"]:
        print(
            f"fused n={row['n_words']:2d}: {row['fused_sps']:8.1f} sents/s  "
            f"vs interleaved {row['interleaved_sps']:8.1f}  ({row['speedup']:.2f}x)"
        )
    scaling = record["process_scaling"]
    print(f"single-process baseline: {scaling['baseline_sps']:8.1f} sents/s")
    for row in scaling["rows"]:
        if row["scaling_claim"]:
            ratio = f"({row['speedup_vs_single']:.2f}x vs single)"
        else:
            # Refuse the "Nx" claim on a host without the cores for it.
            ratio = (
                f"(ratio {row['speedup_vs_single']:.2f} on a "
                f"{record['host_cpus']}-CPU host: dispatch overhead, "
                "not a scaling claim)"
            )
        print(f"workers={row['workers']}: {row['sps']:8.1f} sents/s  {ratio}")
    print(f"wrote {out}  (host CPUs: {record['host_cpus']})")
