"""RES-T2 — total parse time and the virtualization step function.

Paper section 3: parsing the example sentence takes ~0.15 s; a 10-word
sentence takes ~0.45 s "because of processor virtualization"; "the graph
of the parsing time as a function of the number of words in the sentence
would look like a discrete step function which grows as n^4".

This bench sweeps n = 2..12 on the toy grammar's lexicon, prints the
simulated parse time next to the paper's closed-form step model
ceil(q^2 n^4 / 16384) * 0.15 s, and asserts the three shape claims:
flat through n = 8 (4 * 8^4 = 16384 exactly fills the machine), a
discrete jump at n = 9..10, and the n=10 / n=3 ratio close to the
paper's 3x.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_seconds
from repro.grammar.builtin import program_grammar
from repro.parsec import MasParEngine, step_function_seconds, virtualization_units
from repro.workloads import toy_sentence

NS = list(range(2, 13))


@pytest.mark.benchmark(group="res-t2")
def test_parse_time_step_function(benchmark, report):
    engine = MasParEngine()

    def sweep():
        out = {}
        for n in NS:
            result = engine.parse(program_grammar(), toy_sentence(n))
            out[n] = result.stats
        return out

    stats = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for n in NS:
        s = stats[n]
        rows.append(
            [
                n,
                s.processors,
                virtualization_units(n),
                format_seconds(s.simulated_seconds),
                format_seconds(step_function_seconds(n)),
                f"{s.simulated_seconds / step_function_seconds(n):.2f}",
            ]
        )
    report(
        "RES-T2: total parse time vs sentence length (toy grammar, k = 10)",
        ["n", "virtual PEs", "units", "simulated", "paper step model", "sim/model"],
        rows,
        notes=(
            "paper anchors: 0.15 s at n=3 (calibrated), 0.45 s at n=10 (predicted);\n"
            "paper model = ceil(q^2 n^4 / 16384) * 0.15 s.  The simulated column's\n"
            "extra growth above the model is the O(log n) router-scan term."
        ),
    )

    sim = {n: stats[n].simulated_seconds for n in NS}
    # Anchor: the calibration target.
    assert sim[3] == pytest.approx(0.15, rel=0.01)
    # Flat region: everything through n=8 fits in one virtualization unit
    # and costs within ~40% of the n=3 parse (log-scan growth only).
    for n in range(2, 9):
        assert virtualization_units(n) == 1
        assert sim[n] < 0.15 * 1.4
    # The step: n=10 needs 3 units and lands within 2x of the paper's 0.45 s.
    assert virtualization_units(10) == 3
    assert 0.45 / 2 < sim[10] < 0.45 * 2
    # Monotone step growth beyond the machine boundary.
    assert sim[9] > sim[8]
    assert sim[12] > sim[10]
