"""CLAIM-S — scanOr/scanAnd are logarithmic (paper section 2.2).

"The MasPar also has a powerful global router which implements the
scanAnd() and scanOr() primitives, which allow logarithmic-time ANDing
and ORing of data values stored in the PEs."

Two measurements:

* modelled cost — the machine's charged scan cycles grow exactly with
  ceil(log2(span)), asserted across four decades of span;
* host cost — the simulator's own wall-clock per scan, which must grow
  *sub-linearly enough* to be usable (it is numpy-vectorized; this is
  the practical "SIMD via numpy" sanity check).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import format_seconds
from repro.maspar import MP1, CostModel

SPANS = [2**10, 2**12, 2**14, 2**16, 2**18, 2**20]


@pytest.mark.benchmark(group="claim-s")
def test_scan_cost_model_is_logarithmic(benchmark, report):
    cost = CostModel()

    def measure():
        rows = []
        for span in SPANS:
            machine = MP1(n_virtual=span, cost=cost)
            bits = np.zeros(span, dtype=bool)
            seg = np.zeros(span, dtype=np.int64)
            before = machine.cycles
            machine.scan_or(bits, seg)
            pure = (machine.cycles - before) // machine.vfactor - cost.instruction_overhead
            rows.append((span, pure))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    table = [
        [
            span,
            int(math.ceil(math.log2(span))),
            cycles,
            cycles // cost.scan_cycles_per_stage,
        ]
        for span, cycles in rows
    ]
    report(
        "CLAIM-S: modelled scan cost vs span",
        ["span (PEs)", "ceil(log2)", "scan cycles", "stages charged"],
        table,
        notes="claim: stages charged == ceil(log2 span) exactly.",
    )

    for span, cycles in rows:
        assert cycles == math.ceil(math.log2(span)) * cost.scan_cycles_per_stage


@pytest.mark.benchmark(group="claim-s")
@pytest.mark.parametrize("span", [2**14, 2**18])
def test_scan_host_throughput(benchmark, span):
    """Microbenchmark: one segmented scanOr over `span` PEs (1024 segments)."""
    machine = MP1(n_virtual=span)
    rng = np.random.default_rng(0)
    bits = rng.random(span) < 0.3
    seg = np.sort(rng.integers(0, 1024, size=span))
    benchmark(machine.scan_or, bits, seg)
