"""CLUSTER — networked sharded parsing: bit-identity, load, log-derived latency.

The cluster's claims, in falsifiability order:

* **Bit-identity** (always checkable): every verdict and packed network
  bit that crosses the wire must equal a single-process parse of the
  same corpus — including a word-at-a-time streaming session.  The
  bench *gates* on this before timing anything; a cluster that is fast
  but wrong writes no record.
* **Throughput and latency** (log-derived): the published numbers come
  from the merged per-shard logs (earliest-timestamp merge, p50/p95/p99
  over recv→done pairs), not from the load generator's bookkeeping —
  the BFT-MVBA ``LogParser`` discipline.
* **Scaling** (host-gated): a shard fleet on a host with fewer cores
  than cluster processes time-shares one core; the record then carries
  an annotation instead of a claim (the PR-5 lesson, now enforced by
  :func:`repro.analysis.host.scaling_claim_allowed`).

Run standalone to (re)generate the committed record::

    PYTHONPATH=src python benchmarks/bench_cluster.py [--quick]

which writes ``BENCH_cluster.json`` at the repo root.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.cluster.bench import print_report, run_bench


def test_cluster_bench(report):
    """CLUSTER: 2 shards over localhost sockets vs one in-process session."""
    record = run_bench(shards=2, quick=True)
    assert record["bit_identity"]["ok"], record["bit_identity"]
    closed = record["closed_loop"]
    logs = record["shard_logs"]
    assert closed["completed"] == closed["requests"], closed
    assert logs["completed"] > 0 and len(logs["shards"]) == 2, logs
    report(
        f"Cluster bench (2 shards, quick, {record['host']['cpu_count']} CPU host)",
        ["source", "completed", "req/s", "p50 ms", "p95 ms", "p99 ms"],
        [
            ["closed loop", closed["completed"], closed["throughput_rps"],
             closed["p50_ms"], closed["p95_ms"], closed["p99_ms"]],
            ["open loop", record["open_loop"]["completed"],
             record["open_loop"]["throughput_rps"], record["open_loop"]["p50_ms"],
             record["open_loop"]["p95_ms"], record["open_loop"]["p99_ms"]],
            ["shard logs", logs["completed"], logs["throughput_rps"],
             logs["latency"]["p50_ms"], logs["latency"]["p95_ms"],
             logs["latency"]["p99_ms"]],
        ],
        notes=(
            "bit-identity (incl. one streaming session) asserted before timing; "
            + (record.get("scaling_note") or "host cores cover the fleet")
        ),
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small corpus and short loops (CI smoke + artifact)")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    out = Path(__file__).resolve().parents[1] / "BENCH_cluster.json"
    record = run_bench(
        shards=args.shards, workers=args.workers, quick=args.quick, out_path=out
    )
    print_report(record, sys.stdout)
    print(f"wrote {out}")
    raise SystemExit(0 if record["bit_identity"]["ok"] else 1)
