"""COV — grammar coverage and ambiguity statistics (extension table).

The paper's spoken-language programme rests on CNs "compactly stor[ing]
multiple parses"; this bench quantifies that over generated corpora for
both English grammars: acceptance rate on grammatical input, rejection
rate on scrambled input, ambiguity rate and parse counts, and how early
the constraint sequence settles (the paper's "often determined after
only a portion of the constraints").
"""

from __future__ import annotations

import random
import statistics

import pytest

from repro import VectorEngine, count_parses
from repro.analysis import profile_parse
from repro.grammar.builtin import english_extended_grammar, english_grammar
from repro.workloads import random_sentence, scrambled_sentence

CORPUS_SIZE = 40


def corpus_stats(grammar, sentences):
    engine = VectorEngine()
    accepted = 0
    parse_counts = []
    settled = []
    for words in sentences:
        result = engine.parse(grammar, words)
        parses = count_parses(result.network, limit=100)
        if parses:
            accepted += 1
            parse_counts.append(parses)
            profile = profile_parse(grammar, words)
            settled.append(profile.settled_after() / len(profile.records))
    return accepted, parse_counts, settled


@pytest.mark.benchmark(group="coverage")
def test_corpus_coverage(benchmark, report):
    rng = random.Random(2024)
    grammatical = [random_sentence(rng) for _ in range(CORPUS_SIZE)]
    scrambled = [scrambled_sentence(rng) for _ in range(CORPUS_SIZE)]

    def run():
        rows = []
        for grammar in (english_grammar(), english_extended_grammar()):
            ok, parse_counts, settled = corpus_stats(grammar, grammatical)
            bad, _, _ = corpus_stats(grammar, scrambled)
            ambiguous = sum(1 for c in parse_counts if c > 1)
            rows.append(
                [
                    grammar.name,
                    f"{ok}/{CORPUS_SIZE}",
                    f"{CORPUS_SIZE - bad}/{CORPUS_SIZE}",
                    f"{ambiguous}/{max(1, len(parse_counts))}",
                    f"{statistics.mean(parse_counts):.2f}",
                    max(parse_counts),
                    f"{statistics.mean(settled):.0%}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "COV: corpus coverage and ambiguity (generated corpora, seed 2024)",
        [
            "grammar",
            "grammatical accepted",
            "scrambled rejected",
            "ambiguous",
            "mean parses",
            "max parses",
            "settles after",
        ],
        rows,
        notes="'settles after' = fraction of the constraint sequence that still\n"
              "eliminated something — the paper's early-settling observation.",
    )

    for row in rows:
        accepted = int(row[1].split("/")[0])
        rejected = int(row[2].split("/")[0])
        assert accepted == CORPUS_SIZE, f"{row[0]} rejected grammatical input"
        # Scrambles can occasionally come out grammatical; most must not.
        assert rejected > CORPUS_SIZE * 0.7, f"{row[0]} accepted too many scrambles"
