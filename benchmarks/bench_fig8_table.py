"""FIG8 — the architecture comparison table (paper Figure 8).

The paper tabulates processor counts and running times for CFG and CDG
parsing on five architectures.  This bench regenerates the table and
backs every implementable row with a measurement:

* CFG / Sequential        — CYK split-operation growth exponent (≈ n^3)
* CFG / CRCW P-RAM        — Ruzzo's O(log^2 n) with O(n^6) PEs: analytic
                            (no implementation exists anywhere; noted)
* CFG / 2D cellular       — wavefront steps of the mesh CYK (= n - 1)
* CDG / Sequential        — serial-engine pair-check growth (≈ n^4)
* CDG / CRCW P-RAM        — PRAM step count, flat in n (O(k))
* CDG / 2D mesh           — per-cell time of the mesh engine (≈ n^2)
* CDG / Tree & Hypercube  — the MasPar: simulated cycles grow O(k + log n)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PRAMEngine, SerialEngine
from repro.analysis import fit_log_growth, fit_power_law
from repro.cfg import cyk_parse, english_cfg, mesh_cyk, to_cnf
from repro.grammar.builtin import program_grammar
from repro.parsec import MasParEngine
from repro.workloads import sentence_of_length, toy_sentence


def measure_cfg_sequential():
    cnf = to_cnf(english_cfg())
    ns = [4, 6, 8, 12, 16]
    ops = [cyk_parse(cnf, sentence_of_length(n)).split_operations for n in ns]
    return fit_power_law(ns, ops)


def measure_cfg_mesh():
    cnf = to_cnf(english_cfg())
    ns = [4, 8, 12, 16]
    results = [mesh_cyk(cnf, sentence_of_length(n)) for n in ns]
    steps = [r.wavefront_steps for r in results]
    cells = [r.cells for r in results]
    exactly_linear = steps == [n - 1 for n in ns]
    return ns, steps, exactly_linear, fit_power_law(ns, cells)


def measure_cdg_sequential():
    grammar = program_grammar()
    engine = SerialEngine()
    ns = [3, 4, 5, 6]
    checks = [
        engine.parse(grammar, toy_sentence(n)).stats.pair_checks for n in ns
    ]
    return fit_power_law(ns, checks)


def measure_cdg_pram():
    grammar = program_grammar()
    engine = PRAMEngine()
    ns = [3, 4, 5]
    results = [engine.parse(grammar, toy_sentence(n)) for n in ns]
    steps = [r.stats.parallel_steps for r in results]
    procs = [r.stats.processors for r in results]
    return ns, steps, fit_power_law(ns, procs)


def measure_cdg_mesh():
    from repro import MeshEngine

    grammar = program_grammar()
    ns = [3, 6, 9, 12]
    results = [MeshEngine().parse(grammar, toy_sentence(n)) for n in ns]
    times = [r.stats.extra["mesh_time"] for r in results]
    cells = [r.stats.processors for r in results]
    return fit_power_law(ns, times), fit_power_law(ns, cells)


def measure_cdg_maspar():
    grammar = program_grammar()
    engine = MasParEngine()
    ns = [2, 3, 4, 5, 6, 7, 8]  # the single-virtualization-unit regime
    cycles = [
        engine.parse(grammar, toy_sentence(n)).stats.extra["cycles"] for n in ns
    ]
    slope, intercept, r2 = fit_log_growth(ns, cycles)
    return ns, cycles, slope, r2


@pytest.mark.benchmark(group="fig8")
def test_fig8_architecture_table(benchmark, report):
    def build():
        return (
            measure_cfg_sequential(),
            measure_cfg_mesh(),
            measure_cdg_sequential(),
            measure_cdg_pram(),
            measure_cdg_mesh(),
            measure_cdg_maspar(),
        )

    (
        cfg_seq,
        (mesh_ns, mesh_steps, mesh_linear, mesh_cells),
        cdg_seq,
        (pram_ns, pram_steps, pram_procs),
        (cdg_mesh_time, cdg_mesh_cells),
        maspar,
    ) = benchmark.pedantic(build, rounds=1, iterations=1)
    ns, cycles, slope, r2 = maspar

    rows = [
        [
            "Sequential", "CFG", "1", "O(k^3 n^3)",
            f"CYK ops ~ n^{cfg_seq.exponent:.2f} (R^2={cfg_seq.r_squared:.3f})",
        ],
        [
            "CRCW P-RAM", "CFG", "O(n^6)", "O(log^2 n)",
            "analytic only (Ruzzo 1980; no implementation exists)",
        ],
        [
            "2D Cellular Automata", "CFG", "O(n^2)", "O(k n)",
            f"mesh CYK: steps = n-1 exactly over n={mesh_ns}; cells ~ n^{mesh_cells.exponent:.2f}",
        ],
        [
            "Sequential", "CDG", "1", "O(k n^4)",
            f"pair checks ~ n^{cdg_seq.exponent:.2f} (R^2={cdg_seq.r_squared:.3f})",
        ],
        [
            "CRCW P-RAM", "CDG", "O(n^4)", "O(k)",
            f"steps {pram_steps} flat over n={pram_ns}; PEs ~ n^{pram_procs.exponent:.2f}",
        ],
        [
            "2D Mesh / Cellular", "CDG", "O(n^2)", "O(k + n^2)",
            f"mesh engine: per-cell time ~ n^{cdg_mesh_time.exponent:.2f}, cells ~ n^{cdg_mesh_cells.exponent:.2f}",
        ],
        [
            "Tree & Hypercube (MasPar)", "CDG", "O(n^4 / log n)", "O(k + log n)",
            f"sim cycles = {slope:.0f} log2(n) + c (R^2={r2:.3f}) for n<=8",
        ],
    ]
    report(
        "FIG8: CFG and CDG parsing across architectures (paper vs measured)",
        ["Architecture", "Formalism", "#PEs (paper)", "Time (paper)", "Measured"],
        rows,
        notes="k = |grammar| (productions / constraints); measured columns from this run.",
    )

    # Shape assertions: the measured exponents must match the asymptotics.
    assert 2.5 < cfg_seq.exponent < 3.5
    assert mesh_linear, f"mesh steps {mesh_steps} != n - 1 over {mesh_ns}"
    assert 1.8 < mesh_cells.exponent < 2.2
    assert 3.3 < cdg_seq.exponent < 4.5
    # O(k): PRAM step counts may differ only by filtering iterations.
    assert max(pram_steps) - min(pram_steps) <= 8
    assert 3.5 < pram_procs.exponent < 4.5
    assert 1.6 < cdg_mesh_time.exponent < 2.4
    assert 1.9 < cdg_mesh_cells.exponent < 2.1
    assert r2 > 0.8  # cycles are ~ a log n + b in the unit regime
